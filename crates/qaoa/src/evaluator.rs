//! The zero-allocation QAOA execution engine.
//!
//! Every label in the paper's dataset costs hundreds of optimizer-driven
//! circuit simulations (§3.1: 500 iterations per graph, each iteration
//! evaluating the objective one or more times). The one-shot
//! [`QaoaCircuit::run`]/[`QaoaCircuit::expectation`] surface allocates a
//! fresh `2^n`-amplitude state vector per call; [`Evaluator`] owns that
//! buffer instead, so a full optimization trace performs **zero
//! state-vector allocations after setup** and every circuit run executes
//! on the fused kernels in [`qsim::fused`].

use qsim::exec::{Executor, DEFAULT_CROSSOVER_QUBITS};
use qsim::StateVector;

use crate::{Params, QaoaCircuit};

/// A reusable QAOA executor: one problem instance, one owned scratch
/// state vector, no per-call allocation.
///
/// Construct one per (graph, optimization trace) and call
/// [`Evaluator::expectation_in_place`] (or [`Evaluator::expectation_flat`]
/// from optimizer closures) as many times as needed. Results are
/// bit-identical to the one-shot convenience calls on [`QaoaCircuit`],
/// which are themselves thin wrappers over a temporary `Evaluator`.
///
/// # Example
///
/// ```
/// use qaoa::{Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
/// use qgraph::Graph;
///
/// # fn main() -> Result<(), qgraph::GraphError> {
/// let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&Graph::cycle(4)?));
/// let mut evaluator = Evaluator::new(&circuit);
/// // Many evaluations, one buffer:
/// let a = evaluator.expectation_in_place(&Params::zeros(1));
/// let b = evaluator.expectation_in_place(&Params::new(vec![0.6], vec![0.4]));
/// assert!((a - 2.0).abs() < 1e-12);
/// assert!(b.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<'c> {
    circuit: &'c QaoaCircuit,
    psi: StateVector,
    exec: Executor,
}

impl<'c> Evaluator<'c> {
    /// Creates an evaluator for `circuit`, allocating its scratch state
    /// vector once. Runs on the strictly serial execution policy — the
    /// historical bit-identical path.
    pub fn new(circuit: &'c QaoaCircuit) -> Self {
        Self::with_executor(circuit, Executor::serial())
    }

    /// Creates an evaluator on an explicit execution policy — the full
    /// control surface (tests force pooled kernels on small registers by
    /// lowering the crossover).
    pub fn with_executor(circuit: &'c QaoaCircuit, exec: Executor) -> Self {
        Evaluator {
            psi: StateVector::uniform_superposition(circuit.num_qubits()),
            circuit,
            exec,
        }
    }

    /// Creates an evaluator that runs amplitude sweeps on `sim_threads`
    /// pooled workers when the register is at or above the measured
    /// crossover ([`DEFAULT_CROSSOVER_QUBITS`]); `sim_threads == 0` (and
    /// any register below the crossover) is the serial policy, so no pool
    /// is ever spawned for instances that could not use it.
    pub fn with_sim_threads(circuit: &'c QaoaCircuit, sim_threads: usize) -> Self {
        let exec = if sim_threads == 0 || circuit.num_qubits() < DEFAULT_CROSSOVER_QUBITS {
            Executor::serial()
        } else {
            Executor::threaded(sim_threads)
        };
        Self::with_executor(circuit, exec)
    }

    /// The execution policy this evaluator runs on.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The circuit this evaluator runs.
    pub fn circuit(&self) -> &'c QaoaCircuit {
        self.circuit
    }

    /// The state produced by the most recent run (initially `|+⟩^⊗n`).
    pub fn state(&self) -> &StateVector {
        &self.psi
    }

    /// Consumes the evaluator and returns its state buffer.
    pub fn into_state(self) -> StateVector {
        self.psi
    }

    /// Runs the circuit into the owned scratch buffer and returns the
    /// final state. No allocation; each depth is one fused
    /// phase-plus-mixer kernel call.
    pub fn run_into(&mut self, params: &Params) -> &StateVector {
        self.run_layers(params.gammas(), params.betas())
    }

    /// [`Self::run_into`] on raw angle slices — the layout-free core that
    /// optimizer closures use to avoid rebuilding [`Params`] per call.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn run_layers(&mut self, gammas: &[f64], betas: &[f64]) -> &StateVector {
        assert_eq!(
            gammas.len(),
            betas.len(),
            "gamma and beta slices must have equal length"
        );
        self.psi.set_uniform_superposition();
        let operator = self.circuit.hamiltonian().operator();
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            operator.apply_phase_rx_all_exec(&mut self.psi, gamma, 2.0 * beta, &self.exec);
        }
        &self.psi
    }

    /// The QAOA objective `⟨γ,β|C|γ,β⟩`, evaluated in the owned buffer.
    pub fn expectation_in_place(&mut self, params: &Params) -> f64 {
        self.run_into(params);
        self.circuit
            .hamiltonian()
            .operator()
            .expectation_exec(&self.psi, &self.exec)
    }

    /// The objective on the optimizers' flat `[γ_1..γ_p, β_1..β_p]`
    /// layout. This is the closure body for every outer-loop optimizer:
    /// it neither allocates a state vector nor rebuilds a [`Params`].
    ///
    /// # Panics
    ///
    /// Panics if `flat` is empty or has odd length.
    pub fn expectation_flat(&mut self, flat: &[f64]) -> f64 {
        assert!(
            !flat.is_empty() && flat.len().is_multiple_of(2),
            "flat parameter layout must be [gammas.., betas..] with even length"
        );
        let p = flat.len() / 2;
        self.run_layers(&flat[..p], &flat[p..]);
        self.circuit
            .hamiltonian()
            .operator()
            .expectation_exec(&self.psi, &self.exec)
    }

    /// Expectation-based approximation ratio at the given parameters.
    pub fn approximation_ratio_in_place(&mut self, params: &Params) -> f64 {
        let e = self.expectation_in_place(params);
        self.circuit.hamiltonian().approximation_ratio(e)
    }

    /// Canonicalizes optimizer output into a deterministic regression
    /// label — [`QaoaCircuit::canonical_label`] executed on the reused
    /// buffer (three circuit runs, zero state-vector allocations).
    pub fn canonical_label(&mut self, params: &Params) -> Params {
        use std::f64::consts::{FRAC_PI_2, PI};
        let base = params.canonical();
        let value = self.expectation_in_place(&base);
        let mirror = |flip_beta: bool| {
            Params::new(
                base.gammas().iter().map(|g| PI - g).collect(),
                base.betas()
                    .iter()
                    .map(|b| if flip_beta { FRAC_PI_2 - b } else { *b })
                    .collect(),
            )
            .canonical()
        };
        let candidates = [mirror(true), mirror(false)];
        let mut best = base;
        for candidate in candidates {
            // Only fold images that really are symmetries of this instance;
            // on irregular graphs a mirror may land anywhere.
            let symmetric = (self.expectation_in_place(&candidate) - value).abs() <= 1e-9;
            if symmetric && candidate.to_flat() < best.to_flat() {
                best = candidate;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaxCutHamiltonian;
    use qgraph::Graph;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn circuit(g: &Graph) -> QaoaCircuit {
        QaoaCircuit::new(MaxCutHamiltonian::new(g))
    }

    #[test]
    fn reused_evaluator_is_bit_identical_to_fresh_runs() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = qgraph::generate::erdos_renyi(6, 0.5, &mut rng).unwrap();
        let c = circuit(&g);
        let mut shared = Evaluator::new(&c);
        for _ in 0..12 {
            let params = Params::random(2, &mut rng);
            let reused = shared.run_into(&params).clone();
            let fresh = Evaluator::new(&c).run_into(&params).clone();
            // Exact equality, not tolerance: buffer reuse must not change
            // a single bit of the result.
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn expectation_flat_matches_params_path() {
        let mut rng = StdRng::seed_from_u64(78);
        let g = Graph::complete(5).unwrap();
        let c = circuit(&g);
        let mut ev = Evaluator::new(&c);
        for depth in [1usize, 2, 3] {
            let params = Params::random(depth, &mut rng);
            let via_params = ev.expectation_in_place(&params);
            let via_flat = ev.expectation_flat(&params.to_flat());
            assert_eq!(via_params.to_bits(), via_flat.to_bits());
        }
    }

    #[test]
    fn approximation_ratio_consistent() {
        let g = Graph::cycle(8).unwrap();
        let c = circuit(&g);
        let mut ev = Evaluator::new(&c);
        let star = Params::new(
            vec![std::f64::consts::FRAC_PI_4],
            vec![std::f64::consts::PI / 8.0],
        );
        assert!((ev.approximation_ratio_in_place(&star) - 0.75).abs() < 1e-10);
    }

    #[test]
    fn canonical_label_matches_circuit_path() {
        let mut rng = StdRng::seed_from_u64(79);
        for &(n, d) in &[(8usize, 3usize), (8, 4)] {
            let g = qgraph::generate::random_regular(n, d, &mut rng).unwrap();
            let c = circuit(&g);
            let mut ev = Evaluator::new(&c);
            let p = Params::random(1, &mut rng);
            assert_eq!(ev.canonical_label(&p), c.canonical_label(&p));
        }
    }

    #[test]
    fn pooled_evaluator_matches_serial_and_is_thread_invariant() {
        let mut rng = StdRng::seed_from_u64(80);
        let g = qgraph::generate::random_regular(10, 3, &mut rng).unwrap();
        let c = circuit(&g);
        let params = Params::random(2, &mut rng);
        let serial = Evaluator::new(&c).expectation_in_place(&params);
        let mut pooled = Vec::new();
        for threads in [1usize, 2, 4] {
            let exec = Executor::threaded_with_crossover(threads, 1);
            pooled.push(Evaluator::with_executor(&c, exec).expectation_in_place(&params));
        }
        for p in &pooled {
            assert!((p - serial).abs() < 1e-12, "pooled {p} vs serial {serial}");
            // Any pool width gives the same bits; only pooled-vs-serial
            // may differ (reduction grouping).
            assert_eq!(p.to_bits(), pooled[0].to_bits());
        }
    }

    #[test]
    fn with_sim_threads_stays_serial_below_crossover() {
        let g = Graph::cycle(8).unwrap();
        let c = circuit(&g);
        // 8 qubits < crossover: no pool spawned even with threads requested.
        assert!(Evaluator::with_sim_threads(&c, 4).executor().is_serial());
        assert!(Evaluator::with_sim_threads(&c, 0).executor().is_serial());
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn expectation_flat_rejects_odd_layout() {
        let g = Graph::cycle(4).unwrap();
        let c = circuit(&g);
        let _ = Evaluator::new(&c).expectation_flat(&[0.1, 0.2, 0.3]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn run_layers_rejects_mismatched_slices() {
        let g = Graph::cycle(4).unwrap();
        let c = circuit(&g);
        let _ = Evaluator::new(&c).run_layers(&[0.1, 0.2], &[0.3]);
    }
}
