//! Figure 2: degree and graph-size frequency of the synthetic dataset.
//!
//! Regenerates the two histograms of §3.1 from the same generator the
//! labeling pipeline uses.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn_bench::{f4, print_table, write_csv};
use qgraph::stats::{degree_histogram, size_histogram};

fn main() {
    let config = PipelineConfig::from_env();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let graphs = config
        .dataset
        .generate(&mut rng)
        .expect("default dataset spec is valid");
    println!(
        "dataset: {} graphs, nodes {}..={}, degrees {}..={}",
        graphs.len(),
        config.dataset.min_nodes,
        config.dataset.max_nodes,
        config.dataset.min_degree,
        config.dataset.max_degree
    );

    let by_degree = degree_histogram(&graphs);
    let rows: Vec<Vec<String>> = by_degree
        .bins()
        .iter()
        .map(|&(d, c)| vec![d.to_string(), c.to_string(), f4(by_degree.frequency(d))])
        .collect();
    print_table(
        "Figure 2a: degree frequency",
        &["degree", "count", "frequency"],
        &rows,
    );
    let path = write_csv("fig2a_degree_frequency.csv", &["degree", "count", "frequency"], &rows)
        .expect("write csv");
    println!("wrote {}", path.display());

    let by_size = size_histogram(&graphs);
    let rows: Vec<Vec<String>> = by_size
        .bins()
        .iter()
        .map(|&(n, c)| vec![n.to_string(), c.to_string(), f4(by_size.frequency(n))])
        .collect();
    print_table(
        "Figure 2b: graph size frequency",
        &["nodes", "count", "frequency"],
        &rows,
    );
    let path = write_csv("fig2b_size_frequency.csv", &["nodes", "count", "frequency"], &rows)
        .expect("write csv");
    println!("wrote {}", path.display());
}
