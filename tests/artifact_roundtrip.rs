//! Golden acceptance suite for run artifacts (`core::store::RunArtifact`).
//!
//! The contract under test:
//!
//! 1. **Bit-exact inference parity** — a model trained by the pipeline,
//!    saved to an artifact, and rebuilt purely from the on-disk bytes
//!    predicts the *same bits* as the live model, for every architecture.
//! 2. **Corruption never panics** — any single-byte corruption, any
//!    truncation, and any architecture mismatch loads as a typed
//!    [`ArtifactError`], or (when the corruption hits redundant bytes such
//!    as whitespace) as an artifact equal to the original. Fuzzed with
//!    qcheck.
//! 3. **Cross-run determinism** — a run labeled straight through and a run
//!    killed mid-labeling and resumed from its journal write *byte
//!    identical* artifact files.

use std::fs;
use std::path::PathBuf;

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel, ModelConfig};
use qaoa_gnn::dataset::{LabelConfig, LabelReport};
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::store::{artifact_path_for_kind, JOURNAL_FILE};
use qaoa_gnn::{ArtifactError, RunArtifact};
use qgraph::generate::DatasetSpec;
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("qaoa_gnn_artifact_tests")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A seconds-scale pipeline configuration with the full structure intact.
fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        dataset: DatasetSpec::with_count(24),
        labeling: LabelConfig::quick(40),
        training: gnn::train::TrainConfig::quick(6),
        test_size: 6,
        ..PipelineConfig::paper_scale()
    }
}

/// Probe graphs the trained models are queried on — sizes inside and
/// outside the training distribution.
fn probe_graphs() -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut graphs = vec![
        Graph::cycle(8).unwrap(),
        Graph::complete(6).unwrap(),
        Graph::star(9).unwrap(),
    ];
    for i in 0..3 {
        graphs.push(qgraph::generate::erdos_renyi(6 + i, 0.5, &mut rng).unwrap());
    }
    graphs
}

/// An artifact that is cheap to build (no training) for the corruption
/// fuzzing tests: a freshly initialized model plus empty history.
fn untrained_artifact(kind: GnnKind, seed: u64) -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = ModelConfig {
        hidden_dim: 4,
        ..ModelConfig::default()
    };
    let model = GnnModel::new(kind, config, &mut rng);
    RunArtifact {
        config: tiny_config(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(3),
        dataset_fingerprint: 0x9e37_79b9_7f4a_7c15 ^ seed,
        envelope: None,
    }
}

/// Acceptance 1: for every architecture, save → load → predict is
/// bit-identical to the live pipeline model, with the model reconstructed
/// from nothing but the artifact bytes on disk.
#[test]
fn trained_artifact_predicts_bit_identically_per_arch() {
    let dir = temp_dir("predict_parity");
    let base = dir.join("run.json");
    for (i, &kind) in GnnKind::ALL.iter().enumerate() {
        let path = artifact_path_for_kind(&base, kind);
        let config = tiny_config()
            .with_seed(300 + i as u64)
            .with_artifact_path(Some(path.clone()));
        let mut rng = StdRng::seed_from_u64(300 + i as u64);
        let pipeline = Pipeline::run(kind, &config, &mut rng);

        let loaded = RunArtifact::load(&path).unwrap();
        assert_eq!(loaded.kind(), kind);
        assert_eq!(loaded.config, config);
        assert_eq!(loaded.history, pipeline.history);
        assert_eq!(loaded.label_report, pipeline.label_report);
        let rebuilt = loaded.build_model().unwrap();
        for g in &probe_graphs() {
            let live = pipeline.model.predict(g);
            let back = rebuilt.predict(g);
            assert_eq!(
                live.0.to_bits(),
                back.0.to_bits(),
                "{kind}: gamma bits differ on n={}",
                g.n()
            );
            assert_eq!(
                live.1.to_bits(),
                back.1.to_bits(),
                "{kind}: beta bits differ on n={}",
                g.n()
            );
        }
        // Round-tripping through save is a fixed point: re-saving the
        // loaded artifact reproduces the file byte for byte.
        let resaved = dir.join(format!("resave_{kind}.json"));
        loaded.save(&resaved).unwrap();
        assert_eq!(
            fs::read(&path).unwrap(),
            fs::read(&resaved).unwrap(),
            "{kind}: resave is not byte-identical"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance 3: straight run vs. kill-and-resume run write byte-identical
/// artifacts. The second run starts from a journal truncated to half its
/// records plus a torn partial line (what SIGKILL mid-append leaves),
/// resumes labeling, trains, and overwrites the same artifact path with
/// the same configuration — the bytes must not move.
#[test]
fn straight_and_resumed_runs_write_identical_artifacts() {
    let dir = temp_dir("cross_run");
    let artifact_path = dir.join("run.gcn.json");
    let config = tiny_config()
        .with_seed(42)
        .with_checkpoint_dir(Some(dir.join("journal")))
        .with_artifact_path(Some(artifact_path.clone()));

    let mut rng = StdRng::seed_from_u64(42);
    let straight = Pipeline::run(GnnKind::Gcn, &config, &mut rng);
    let straight_bytes = fs::read(&artifact_path).unwrap();

    // Kill: truncate the journal mid-batch with a torn tail.
    let journal_path = dir.join("journal").join(JOURNAL_FILE);
    let full = fs::read_to_string(&journal_path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() >= 4, "journal too small to truncate meaningfully");
    let mut truncated: String = lines[..lines.len() / 2]
        .iter()
        .flat_map(|l| [*l, "\n"])
        .collect();
    truncated.push_str(&lines[lines.len() / 2][..3]);
    fs::write(&journal_path, truncated).unwrap();

    let mut rng = StdRng::seed_from_u64(42);
    let resumed = Pipeline::run(GnnKind::Gcn, &config, &mut rng);
    let resumed_bytes = fs::read(&artifact_path).unwrap();

    assert_eq!(
        straight_bytes, resumed_bytes,
        "resumed run must reproduce the artifact byte for byte"
    );
    for g in &probe_graphs() {
        assert_eq!(straight.model.predict(g), resumed.model.predict(g));
    }
    // And the file round-trips into the same model either way.
    let loaded = RunArtifact::load(&artifact_path).unwrap();
    let rebuilt = loaded.build_model().unwrap();
    for g in &probe_graphs() {
        assert_eq!(straight.model.predict(g), rebuilt.predict(g));
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance 2 (typed failure): an artifact whose weights claim a
/// different architecture than they fit fails with
/// [`ArtifactError::Weights`] — before any model is constructed.
#[test]
fn architecture_mismatch_fails_typed() {
    let dir = temp_dir("arch_mismatch");
    for &kind in &GnnKind::ALL {
        for &claimed in &GnnKind::ALL {
            if claimed == kind {
                continue;
            }
            let mut artifact = untrained_artifact(kind, 9);
            artifact.weights.kind = claimed;
            let path = dir.join(format!("{kind}_as_{claimed}.json"));
            artifact.save(&path).unwrap();
            match RunArtifact::load(&path) {
                Err(ArtifactError::Weights(e)) => {
                    // The error must render without panicking.
                    let _ = e.to_string();
                }
                other => panic!("{kind} as {claimed}: expected Weights error, got {other:?}"),
            }
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance 2 (truncation): every prefix-truncation of a valid artifact
/// fails with a typed error, never a panic. (Cutting only trailing
/// whitespace may still load — then it must decode to the identical
/// artifact.)
#[test]
fn every_truncation_fails_typed() {
    let dir = temp_dir("truncation");
    let artifact = untrained_artifact(GnnKind::Gin, 11);
    let path = dir.join("full.json");
    artifact.save(&path).unwrap();
    let bytes = fs::read(&path).unwrap();
    let cut = dir.join("cut.json");
    // Dense sweep near both ends, strided through the middle.
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(97));
    cuts.extend(bytes.len().saturating_sub(32)..bytes.len());
    for len in cuts {
        fs::write(&cut, &bytes[..len]).unwrap();
        match RunArtifact::load(&cut) {
            Ok(back) => {
                // Only whitespace may have been lost.
                assert!(
                    bytes[len..].iter().all(u8::is_ascii_whitespace),
                    "truncation to {len} of {} cut content yet loaded",
                    bytes.len()
                );
                assert_eq!(back, artifact);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

qcheck::properties! {
    cases = 300;

    /// Acceptance 2 (fuzz): overwriting any single byte with any value
    /// either fails typed or decodes to the original artifact (the byte
    /// was redundant — whitespace or an equivalent encoding). Never a
    /// panic, never a silently different artifact.
    fn single_byte_corruption_is_detected_or_harmless(
        seed in 0u64..=3,
        pos_raw in qcheck::any_u64(),
        byte_raw in 0u64..=255
    ) {
        let kind = GnnKind::ALL[(seed % 4) as usize];
        let artifact = untrained_artifact(kind, seed);
        let dir = temp_dir(&format!("fuzz_{seed}_{}", pos_raw % 8191));
        let path = dir.join("a.json");
        artifact.save(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let pos = (pos_raw % bytes.len() as u64) as usize;
        let byte = byte_raw as u8;
        qcheck::prop_assume!(bytes[pos] != byte);
        bytes[pos] = byte;
        fs::write(&path, &bytes).unwrap();
        match RunArtifact::load(&path) {
            Ok(back) => qcheck::prop_assert_eq!(back, artifact),
            Err(e) => qcheck::prop_assert!(!e.to_string().is_empty()),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping a single bit inside the weights section specifically must
    /// be caught by the section checksum (or fail to parse) — weights are
    /// the payload whose silent corruption would be worst.
    fn weight_section_bitflip_never_survives(
        seed in 0u64..=3,
        pos_raw in qcheck::any_u64(),
        bit in 0u64..=7
    ) {
        let kind = GnnKind::ALL[(seed % 4) as usize];
        let artifact = untrained_artifact(kind, 100 + seed);
        let dir = temp_dir(&format!("bitflip_{seed}_{}", pos_raw % 8191));
        let path = dir.join("a.json");
        artifact.save(&path).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let start = text.find("\"weights\"").unwrap();
        let end = text.find("\"history\"").unwrap();
        qcheck::prop_assume!(end > start);
        let mut bytes = text.into_bytes();
        let pos = start + (pos_raw % (end - start) as u64) as usize;
        let flipped = bytes[pos] ^ (1u8 << bit);
        // Skip flips that only toggle whitespace into other whitespace.
        qcheck::prop_assume!(
            !(bytes[pos].is_ascii_whitespace() && flipped.is_ascii_whitespace())
        );
        bytes[pos] = flipped;
        fs::write(&path, &bytes).unwrap();
        match RunArtifact::load(&path) {
            Ok(back) => qcheck::prop_assert_eq!(back, artifact),
            Err(e) => qcheck::prop_assert!(!e.to_string().is_empty()),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
