//! Quickstart: train a small GNN on QAOA labels and warm-start an unseen
//! instance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the whole paper in miniature: generate a labeled dataset
//! (§3.1), train a GCN (§4.1), and compare GNN-predicted initialization
//! against random initialization on a fresh graph (§4).

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::{GnnKind, GnnModel, ModelConfig};
use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
use qaoa_gnn::dataset::{Dataset, LabelConfig};
use qaoa_gnn::pipeline;
use qgraph::generate::DatasetSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A labeled dataset: 80 random regular graphs, each labeled by QAOA
    //    from random initialization (the paper uses 9598 graphs and 500
    //    iterations; this is the minutes-scale version).
    println!("labeling 80 graphs...");
    let spec = DatasetSpec {
        count: 80,
        ..DatasetSpec::default()
    };
    let dataset = Dataset::generate(&spec, &LabelConfig::quick(100), 7)?;
    println!("mean label approximation ratio: {:.3}", dataset.mean_approx_ratio());

    // 2. Train a GCN to predict (γ, β) from graph structure.
    println!("training GCN for 25 epochs...");
    let model_config = ModelConfig::default();
    let model = GnnModel::new(GnnKind::Gcn, model_config.clone(), &mut rng);
    let examples = pipeline::to_examples(&dataset, &model_config);
    let history = gnn::train::train(
        &model,
        &examples,
        &gnn::train::TrainConfig::quick(25),
        &mut rng,
    );
    println!(
        "train loss: {:.4} -> {:.4}",
        history.epochs.first().map(|e| e.train_loss).unwrap_or(f64::NAN),
        history.final_loss().unwrap_or(f64::NAN)
    );

    // 3. Warm-start an unseen instance and compare with random init in the
    //    paper's fixed-parameter setting.
    let unseen = qgraph::generate::random_regular(12, 3, &mut rng)?;
    let hamiltonian = MaxCutHamiltonian::new(&unseen);
    let circuit = QaoaCircuit::new(hamiltonian.clone());

    let (gamma, beta) = model.predict(&unseen);
    let predicted = Params::new(vec![gamma], vec![beta]);
    let gnn_ratio = circuit.approximation_ratio(&predicted);
    let random_ratio = circuit.approximation_ratio(&Params::random(1, &mut rng));

    println!("\nunseen 3-regular graph on 12 nodes (optimal cut = {}):", hamiltonian.optimal_value());
    println!("  GNN-predicted (γ={gamma:.3}, β={beta:.3}) AR: {gnn_ratio:.3}");
    println!("  random initialization AR:                  {random_ratio:.3}");
    println!(
        "  improvement: {:+.1} percentage points",
        (gnn_ratio - random_ratio) * 100.0
    );
    Ok(())
}
