//! Measures the serial→pooled crossover of the state-vector kernels: one
//! QAOA expectation per (register size, worker count) cell, n = 8..=15 ×
//! threads = 1..=8, pool forced on so the threaded algorithm is measured
//! below the production crossover too.
//!
//! Prints the per-cell median time and the speedup over the serial path,
//! reports the measured crossover (smallest n whose best pooled time beats
//! serial), and writes `target/experiments/crossover_sweep.csv`.
//!
//! On a single-core container every pooled cell pays scheduling overhead
//! and the "crossover" degenerates to ∞ — the CSV records the host's
//! `available_parallelism` so a reader can tell those runs apart.

use std::time::Instant;

use qaoa::{Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qaoa_gnn_bench::{print_table, write_csv};
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;
use qsim::exec::Executor;

const THREADS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const DEPTH: usize = 3;

/// One deterministic paper-shaped graph per register size (mirrors the
/// golden parallel-parity suite's generator).
fn graph_for_size(n: usize, rng: &mut StdRng) -> Graph {
    if n.is_multiple_of(2) {
        qgraph::generate::random_regular(n, 3, rng).unwrap()
    } else {
        qgraph::generate::erdos_renyi(n, 0.5, rng).unwrap()
    }
}

/// Median wall-time in nanoseconds of `evaluator.expectation_in_place`
/// over enough repetitions to be stable at small n.
fn median_eval_ns(evaluator: &mut Evaluator, params: &Params) -> u64 {
    // Warm up (first pooled call may fault pages / park-unpark workers).
    let mut sink = evaluator.expectation_in_place(params);
    let reps = 31;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        sink += evaluator.expectation_in_place(params);
        samples.push(start.elapsed().as_nanos() as u64);
    }
    assert!(sink.is_finite());
    samples.sort_unstable();
    samples[reps / 2]
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("crossover sweep: n = 8..=15, threads = 1..=8, p = {DEPTH}");
    println!("host available_parallelism = {cores}");

    let params = Params::new(vec![0.5; DEPTH], vec![0.2; DEPTH]);
    let mut rng = StdRng::seed_from_u64(0xc0_55);
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut crossover: Option<usize> = None;

    for n in 8..=15usize {
        let graph = graph_for_size(n, &mut rng);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&graph));

        let mut serial_eval = Evaluator::new(&circuit);
        let serial_ns = median_eval_ns(&mut serial_eval, &params);

        let mut row = vec![n.to_string(), format!("{serial_ns}")];
        let mut best_pooled = u64::MAX;
        for threads in THREADS {
            // Crossover forced to 2 qubits: measure the pooled algorithm
            // at every n, including below the production default.
            let exec = Executor::threaded_with_crossover(threads, 2);
            let mut evaluator = Evaluator::with_executor(&circuit, exec);
            let ns = median_eval_ns(&mut evaluator, &params);
            best_pooled = best_pooled.min(ns);
            row.push(format!("{:.2}", serial_ns as f64 / ns as f64));
            csv_rows.push(vec![
                n.to_string(),
                threads.to_string(),
                serial_ns.to_string(),
                ns.to_string(),
                format!("{:.4}", serial_ns as f64 / ns as f64),
            ]);
        }
        if crossover.is_none() && best_pooled < serial_ns {
            crossover = Some(n);
        }
        rows.push(row);
    }

    let header: Vec<String> = std::iter::once("n".to_string())
        .chain(std::iter::once("serial ns".to_string()))
        .chain(THREADS.iter().map(|t| format!("x{t}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        "pooled speedup over serial (median, forced pool)",
        &header_refs,
        &rows,
    );

    match crossover {
        Some(n) => println!(
            "\nmeasured crossover: n = {n} (first size where some pooled \
             width beats serial)"
        ),
        None => println!(
            "\nmeasured crossover: none in 8..=15 — pooled never beat serial \
             (expected on a {cores}-core host; the production default stays \
             at n = {})",
            qsim::exec::DEFAULT_CROSSOVER_QUBITS
        ),
    }

    let path = write_csv(
        &format!("crossover_sweep_{cores}core.csv"),
        &["n", "threads", "serial_ns", "pooled_ns", "speedup"],
        &csv_rows,
    )
    .expect("write csv");
    println!("csv: {}", path.display());
}
