//! Criterion benchmarks of GNN inference and training steps for all four
//! architectures — the per-example cost of the §4.1 training loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use gnn::{GnnKind, GnnModel, GraphContext, ModelConfig};
use tensor::optim::{Adam, Optimizer};
use tensor::Matrix;

fn context() -> GraphContext {
    let mut rng = StdRng::seed_from_u64(21);
    let graph = qgraph::generate::random_regular(12, 4, &mut rng).expect("feasible shape");
    GraphContext::new(&graph, &ModelConfig::default().features, 0.0)
}

fn bench_predict(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("gnn_predict_n12");
    for kind in GnnKind::ALL {
        let mut rng = StdRng::seed_from_u64(22);
        let model = GnnModel::new(kind, ModelConfig::default(), &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, _| {
                b.iter(|| model.predict_ctx(&ctx));
            },
        );
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let ctx = context();
    let target = Matrix::row_vector(&[0.3, 0.7]);
    let mut group = c.benchmark_group("gnn_train_step_n12");
    for kind in GnnKind::ALL {
        let mut rng = StdRng::seed_from_u64(23);
        let model = GnnModel::new(kind, ModelConfig::default(), &mut rng);
        let mut optimizer = Adam::new(0.01);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, _| {
                b.iter(|| {
                    model.tape().reset();
                    let out = model.forward(&ctx, &mut rng);
                    let loss = out.mse(&target);
                    model.tape().backward(&loss);
                    optimizer.step(model.parameters());
                });
            },
        );
    }
    group.finish();
}

fn bench_hidden_dim_scaling(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("gin_predict_by_width");
    for hidden in [16usize, 32, 64, 128] {
        let mut rng = StdRng::seed_from_u64(24);
        let model = GnnModel::new(
            GnnKind::Gin,
            ModelConfig {
                hidden_dim: hidden,
                ..ModelConfig::default()
            },
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::from_parameter(hidden), &hidden, |b, _| {
            b.iter(|| model.predict_ctx(&ctx));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predict, bench_train_step, bench_hidden_dim_scaling);
criterion_main!(benches);
