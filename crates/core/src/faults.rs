//! Deterministic fault injection.
//!
//! Robustness claims are only as good as the failures they were tested
//! against. This module provides **named failpoints** — fixed places in
//! the serving and persistence paths where a test (or an operator, via the
//! `QAOA_GNN_FAULTS` environment variable) can deterministically inject a
//! panic, a NaN, or a typed error. Every rung of the serving degradation
//! ladder and every typed error path is exercised by arming a failpoint
//! and asserting the observable outcome, instead of trusting that the
//! handler would work if the failure ever happened.
//!
//! # Failpoints
//!
//! | name | hooked in | effect when armed |
//! |------|-----------|-------------------|
//! | [`ARTIFACT_LOAD`] | [`crate::store::RunArtifact::load`] | load fails (`Error`) or panics (`Panic`) |
//! | [`WEIGHT_BUILD`] | [`crate::serve::GuardedPredictor`] model construction | build fails or panics |
//! | [`FORWARD`] | the guarded GNN forward pass | prediction panics (`Panic`) or returns NaN (`Nan`) |
//! | [`SIM_EVAL`] | the guarded simulator verification | score becomes NaN (`Nan`) or evaluation panics |
//! | [`JOURNAL_IO`] | [`crate::store::LabelJournal::append`] | append fails or panics |
//! | [`HOT_SWAP`] | [`crate::serve_loop::ServeLoop::swap_artifact`] | swap rejected (`Error`) or panics; the old artifact keeps serving |
//! | [`ADMISSION`] | [`crate::serve_loop::ServeLoop::submit`] | request refused (`Error`) or panics at admission |
//!
//! # Arming
//!
//! Programmatic (tests): [`armed`] returns an RAII guard that also holds a
//! global lock, so concurrently running `#[test]`s that inject faults are
//! serialized. Guard-armed failpoints additionally fire only on the arming
//! thread, so tests that *don't* inject faults can run concurrently with
//! ones that do and never observe their injections:
//!
//! ```
//! use qaoa_gnn::faults::{self, FaultAction};
//! let _guard = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
//! assert_eq!(faults::fire(faults::FORWARD), Some(FaultAction::Nan));
//! assert_eq!(faults::fire(faults::FORWARD), None); // budget of 1 spent
//! ```
//!
//! Environment (smoke tests, operations):
//! `QAOA_GNN_FAULTS="forward=nan,artifact_load=err:2"` arms `forward` with
//! one NaN injection and `artifact_load` with two error injections; the
//! armed process behaves identically on every run — injection is counted,
//! never random. Env-armed failpoints fire on any thread.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread::ThreadId;

/// Failpoint inside [`crate::store::RunArtifact::load`].
pub const ARTIFACT_LOAD: &str = "artifact_load";
/// Failpoint around model reconstruction from artifact weights.
pub const WEIGHT_BUILD: &str = "weight_build";
/// Failpoint around the GNN forward pass on the serving path.
pub const FORWARD: &str = "forward";
/// Failpoint around the simulator verification of a served prediction.
pub const SIM_EVAL: &str = "sim_eval";
/// Failpoint inside [`crate::store::LabelJournal::append`].
pub const JOURNAL_IO: &str = "journal_io";
/// Failpoint inside [`crate::serve_loop::ServeLoop::swap_artifact`]: the
/// incoming artifact's model rebuild fails (`Error`) or panics (`Panic`),
/// and the loop must keep serving the old generation.
pub const HOT_SWAP: &str = "hot_swap";
/// Failpoint inside [`crate::serve_loop::ServeLoop::submit`]: admission
/// refuses (`Error`) or panics (`Panic`) instead of enqueueing.
pub const ADMISSION: &str = "admission";

/// Every failpoint name, for enumeration in tests and docs.
pub const ALL: [&str; 7] = [
    ARTIFACT_LOAD,
    WEIGHT_BUILD,
    FORWARD,
    SIM_EVAL,
    JOURNAL_IO,
    HOT_SWAP,
    ADMISSION,
];

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a recognizable message (tests unwind isolation).
    Panic,
    /// Poison a numeric result with NaN (tests non-finite guardrails).
    Nan,
    /// Return a typed error (tests error propagation).
    Error,
}

impl FaultAction {
    fn parse(s: &str) -> Option<FaultAction> {
        match s {
            "panic" => Some(FaultAction::Panic),
            "nan" => Some(FaultAction::Nan),
            "err" | "error" => Some(FaultAction::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::Nan => write!(f, "nan"),
            FaultAction::Error => write!(f, "err"),
        }
    }
}

/// One armed failpoint: what to inject and how many firings remain.
///
/// Guard-armed failpoints record the arming thread and fire only on it, so
/// a `#[test]` injecting faults cannot contaminate unrelated tests running
/// concurrently in the same binary. Env-armed failpoints carry no thread
/// and fire process-wide.
#[derive(Debug, Clone)]
struct Armed {
    name: String,
    action: FaultAction,
    remaining: u64,
    thread: Option<ThreadId>,
}

struct Registry {
    /// Armed failpoints; empty in production (the common case is one
    /// `is_empty` check under an uncontended lock).
    armed: Vec<Armed>,
    env_loaded: bool,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            armed: Vec::new(),
            env_loaded: false,
        })
    })
}

/// Locks the registry, tolerating poisoning: a failpoint whose injected
/// panic unwound through a lock holder must not wedge every later test.
fn lock() -> MutexGuard<'static, Registry> {
    registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn load_env(reg: &mut Registry) {
    if reg.env_loaded {
        return;
    }
    reg.env_loaded = true;
    let Ok(spec) = std::env::var("QAOA_GNN_FAULTS") else {
        return;
    };
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (name, rest) = match entry.split_once('=') {
            Some(pair) => pair,
            None => (entry, "err"),
        };
        let (action_str, count_str) = match rest.split_once(':') {
            Some((a, c)) => (a, c),
            None => (rest, "1"),
        };
        let Some(action) = FaultAction::parse(action_str.trim()) else {
            continue; // unknown actions are ignored, not fatal
        };
        let remaining = count_str.trim().parse::<u64>().unwrap_or(1).max(1);
        reg.armed.push(Armed {
            name: name.trim().to_string(),
            action,
            remaining,
            thread: None,
        });
    }
}

fn matches_here(armed: &Armed, name: &str) -> bool {
    armed.name == name
        && armed
            .thread
            .map_or(true, |t| t == std::thread::current().id())
}

/// Consumes one firing of the named failpoint, if armed.
///
/// Returns the action to apply and decrements the failpoint's budget; a
/// failpoint armed for `n` firings is disarmed after the `n`-th. Unarmed
/// failpoints cost one short lock acquisition and return `None`.
pub fn fire(name: &str) -> Option<FaultAction> {
    let mut reg = lock();
    load_env(&mut reg);
    if reg.armed.is_empty() {
        return None;
    }
    let idx = reg.armed.iter().position(|a| matches_here(a, name))?;
    let action = reg.armed[idx].action;
    reg.armed[idx].remaining -= 1;
    if reg.armed[idx].remaining == 0 {
        reg.armed.remove(idx);
    }
    Some(action)
}

/// `true` when the named failpoint is currently armed for this thread
/// (does not consume a firing).
pub fn is_armed(name: &str) -> bool {
    let mut reg = lock();
    load_env(&mut reg);
    reg.armed.iter().any(|a| matches_here(a, name))
}

/// Panics with a recognizable message if the failpoint fires with
/// [`FaultAction::Panic`]; otherwise returns the fired action (if any) for
/// the caller to apply. Convenience for hook sites whose panic handling is
/// `catch_unwind`-based.
pub fn fire_may_panic(name: &str) -> Option<FaultAction> {
    let action = fire(name)?;
    if action == FaultAction::Panic {
        panic!("fault injected: {name}");
    }
    Some(action)
}

fn test_lock() -> &'static Mutex<()> {
    static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    TEST_LOCK.get_or_init(|| Mutex::new(()))
}

/// RAII guard for one armed failpoint; disarms on drop.
///
/// The guard also holds a process-wide mutex, so two tests arming faults
/// concurrently serialize instead of observing each other's injections.
pub struct FaultGuard {
    name: String,
    _exclusive: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut reg = lock();
        reg.armed.retain(|a| a.name != self.name);
    }
}

/// Arms `name` to fire `count` times with `action` **on this thread
/// only**, returning a guard that disarms on drop. See [`FaultGuard`] for
/// the concurrency contract. The guard holds a non-reentrant process-wide
/// mutex: arm at most one failpoint at a time (drop the previous guard
/// first), or the second call deadlocks.
pub fn armed(name: &str, action: FaultAction, count: u64) -> FaultGuard {
    let exclusive = test_lock()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut reg = lock();
    // Replace any stale arming of the same name (e.g. a prior guard whose
    // test panicked between arm and fire).
    reg.armed.retain(|a| a.name != name);
    reg.armed.push(Armed {
        name: name.to_string(),
        action,
        remaining: count.max(1),
        thread: Some(std::thread::current().id()),
    });
    drop(reg);
    FaultGuard {
        name: name.to_string(),
        _exclusive: exclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_failpoints_fire_nothing() {
        let _guard = armed("some_other_point", FaultAction::Nan, 1);
        assert_eq!(fire("not_armed"), None);
        assert!(!is_armed("not_armed"));
    }

    #[test]
    fn armed_failpoint_fires_exactly_count_times() {
        let _guard = armed(FORWARD, FaultAction::Nan, 3);
        assert!(is_armed(FORWARD));
        for _ in 0..3 {
            assert_eq!(fire(FORWARD), Some(FaultAction::Nan));
        }
        assert_eq!(fire(FORWARD), None);
        assert!(!is_armed(FORWARD));
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _guard = armed(SIM_EVAL, FaultAction::Error, 100);
            assert!(is_armed(SIM_EVAL));
        }
        assert!(!is_armed(SIM_EVAL));
    }

    #[test]
    fn fire_may_panic_panics_on_panic_action() {
        let _guard = armed(JOURNAL_IO, FaultAction::Panic, 1);
        let result = std::panic::catch_unwind(|| fire_may_panic(JOURNAL_IO));
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("fault injected: journal_io"));
    }

    #[test]
    fn actions_parse_and_display() {
        for action in [FaultAction::Panic, FaultAction::Nan, FaultAction::Error] {
            assert_eq!(FaultAction::parse(&action.to_string()), Some(action));
        }
        assert_eq!(FaultAction::parse("error"), Some(FaultAction::Error));
        assert_eq!(FaultAction::parse("bogus"), None);
    }

    #[test]
    fn guard_armed_faults_are_thread_local() {
        let _guard = armed(ARTIFACT_LOAD, FaultAction::Error, 1);
        assert!(is_armed(ARTIFACT_LOAD));
        // Another thread never sees a guard-armed fault.
        let other = std::thread::spawn(|| (is_armed(ARTIFACT_LOAD), fire(ARTIFACT_LOAD)));
        assert_eq!(other.join().unwrap(), (false, None));
        // The arming thread still gets its full budget.
        assert_eq!(fire(ARTIFACT_LOAD), Some(FaultAction::Error));
    }

    #[test]
    fn all_names_are_distinct() {
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
