//! Inference from a saved run artifact: train once, predict forever.
//!
//! ```text
//! # First run: trains a quick model and saves the artifact.
//! cargo run --release --example predict_from_artifact
//! # Later runs: load the artifact and predict without retraining.
//! cargo run --release --example predict_from_artifact
//! # Point at an artifact saved by the experiment binaries:
//! QAOA_GNN_ARTIFACT=runs/fig5.gcn.json cargo run --release --example predict_from_artifact
//! ```
//!
//! Demonstrates the deployment story behind [`qaoa_gnn::RunArtifact`]: the
//! file bundles weights (bit-exact), configuration, training history and
//! the dataset fingerprint, so warm-starting QAOA on a new graph is one
//! `load` + one `predict` — no labeling, no training, and the predictions
//! are the same bits the training process produced.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::train::TrainConfig;
use gnn::GnnKind;
use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
use qaoa_gnn::dataset::LabelConfig;
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::RunArtifact;
use qgraph::generate::DatasetSpec;
use qgraph::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::var("QAOA_GNN_ARTIFACT")
        .ok()
        .filter(|p| !p.trim().is_empty())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("qaoa_gnn_example_artifact.json"));

    if !path.exists() {
        println!("no artifact at {} — training one (quick config)...", path.display());
        let config = PipelineConfig::paper_scale()
            .with_dataset(DatasetSpec::with_count(60))
            .with_training(TrainConfig::quick(15))
            .with_test_size(12)
            .with_artifact_path(Some(path.clone()));
        let config = PipelineConfig {
            labeling: LabelConfig::quick(60),
            ..config
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        Pipeline::run(GnnKind::Gcn, &config, &mut rng);
        println!("saved artifact to {}", path.display());
    }

    let artifact = RunArtifact::load(&path)?;
    println!(
        "loaded {} artifact: {} parameters, {} training epochs, dataset fingerprint {:#018x}",
        artifact.kind(),
        artifact.weights.num_parameters(),
        artifact.history.epochs.len(),
        artifact.dataset_fingerprint,
    );
    let model = artifact.build_model()?;

    println!("\n{:<22} {:>8} {:>8} {:>12} {:>8}", "graph", "gamma", "beta", "E[cut]", "ratio");
    let mut rng = StdRng::seed_from_u64(1);
    let mut instances = vec![
        ("cycle(10)".to_string(), Graph::cycle(10)?),
        ("complete(7)".to_string(), Graph::complete(7)?),
        ("star(9)".to_string(), Graph::star(9)?),
    ];
    for i in 0..3 {
        let g = qgraph::generate::erdos_renyi(8 + i, 0.5, &mut rng)?;
        instances.push((format!("erdos_renyi(n={})", g.n()), g));
    }
    for (name, g) in &instances {
        let (gamma, beta) = model.predict(g);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(g));
        let expectation = circuit.expectation(&Params::new(vec![gamma], vec![beta]));
        let optimal = circuit.hamiltonian().optimal_value();
        println!(
            "{name:<22} {gamma:>8.4} {beta:>8.4} {expectation:>12.4} {:>8.3}",
            expectation / optimal
        );
    }
    println!("\n(predictions are bit-identical across processes — see tests/artifact_roundtrip.rs)");
    Ok(())
}
