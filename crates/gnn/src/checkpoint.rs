//! Architecture-aware weight checkpoints.
//!
//! [`ModelWeights`] is the serializable identity of a trained [`GnnModel`]:
//! the architecture kind, the full hyper-parameter configuration, and every
//! trainable parameter matrix in construction order. Unlike the raw
//! parameter dump of [`GnnModel::save_params`], a `ModelWeights` is
//! self-describing — [`ModelWeights::build_model`] reconstructs the exact
//! model with no out-of-band knowledge, and validation is total: a
//! corrupted or architecture-mismatched weight set fails with a typed
//! [`WeightError`], never a panic and never silently-wrong weights.
//!
//! Serialization itself lives with the formats (`qaoa_gnn::json` for the
//! JSON run artifact); this module owns the in-memory schema and its
//! validation so every format shares one notion of "these weights fit that
//! architecture".

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use tensor::Matrix;

use crate::{GnnKind, GnnModel, ModelConfig};

/// Why a weight set cannot be turned into a model.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightError {
    /// The hyper-parameter configuration is structurally invalid (the same
    /// conditions [`GnnModel::new`] would panic on, surfaced as data).
    BadConfig(String),
    /// The number of parameter matrices does not match what the declared
    /// architecture and configuration require.
    ParamCount {
        /// Matrices the architecture requires.
        expected: usize,
        /// Matrices the weight set carries.
        found: usize,
    },
    /// One parameter matrix has the wrong shape for its slot — the
    /// signature of loading one architecture's weights into another.
    ShapeMismatch {
        /// Index of the offending parameter in construction order.
        index: usize,
        /// Shape the architecture requires at that slot.
        expected: (usize, usize),
        /// Shape the weight set carries there.
        found: (usize, usize),
    },
    /// A parameter contains a non-finite value (NaN or ±∞).
    NonFinite {
        /// Index of the offending parameter in construction order.
        index: usize,
    },
}

impl std::fmt::Display for WeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightError::BadConfig(msg) => write!(f, "invalid model config: {msg}"),
            WeightError::ParamCount { expected, found } => write!(
                f,
                "parameter count mismatch: architecture requires {expected} matrices, found {found}"
            ),
            WeightError::ShapeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "parameter {index} shape mismatch: architecture requires {expected:?}, found {found:?}"
            ),
            WeightError::NonFinite { index } => {
                write!(f, "parameter {index} contains a non-finite value")
            }
        }
    }
}

impl std::error::Error for WeightError {}

/// The serializable identity of a trained model: architecture, full
/// hyper-parameters, and every trainable parameter in construction order.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWeights {
    /// The architecture the parameters belong to.
    pub kind: GnnKind,
    /// The hyper-parameter configuration the parameters were shaped by.
    pub config: ModelConfig,
    /// Every trainable parameter, in [`GnnModel`] construction order.
    pub params: Vec<Matrix>,
}

/// The parameter shapes `GnnModel::new(kind, config, _)` allocates, in
/// construction order, without constructing a model.
///
/// # Errors
///
/// [`WeightError::BadConfig`] when the configuration is one `GnnModel::new`
/// would reject (zero layers, zero hidden width, zero-dimensional features,
/// or dropout outside `[0, 1)`).
pub fn expected_shapes(kind: GnnKind, config: &ModelConfig) -> Result<Vec<(usize, usize)>, WeightError> {
    if config.layers == 0 {
        return Err(WeightError::BadConfig("need at least one GNN layer".into()));
    }
    if config.hidden_dim == 0 {
        return Err(WeightError::BadConfig("hidden_dim must be positive".into()));
    }
    if config.features.dim() == 0 {
        return Err(WeightError::BadConfig(
            "feature dimension must be positive".into(),
        ));
    }
    if !(0.0..1.0).contains(&config.dropout) {
        return Err(WeightError::BadConfig("dropout must be in [0, 1)".into()));
    }
    let mut shapes = Vec::new();
    let mut in_dim = config.features.dim();
    let out_dim = config.hidden_dim;
    for _ in 0..config.layers {
        match kind {
            GnnKind::Gcn => shapes.push((in_dim, out_dim)),
            GnnKind::Gat => {
                shapes.push((in_dim, out_dim));
                shapes.push((out_dim, 1));
                shapes.push((out_dim, 1));
            }
            GnnKind::Gin => {
                shapes.push((in_dim, out_dim));
                shapes.push((1, out_dim));
                shapes.push((out_dim, out_dim));
                shapes.push((1, out_dim));
            }
            GnnKind::Sage => {
                shapes.push((in_dim, out_dim));
                shapes.push((1, out_dim));
                shapes.push((in_dim + out_dim, out_dim));
            }
        }
        in_dim = out_dim;
    }
    // MLP head: hidden layer + 2-wide output, each with a bias row.
    shapes.push((out_dim, out_dim));
    shapes.push((1, out_dim));
    shapes.push((out_dim, 2));
    shapes.push((1, 2));
    Ok(shapes)
}

impl ModelWeights {
    /// Checks that the parameter list exactly matches the declared
    /// architecture: right matrix count, right shape in every slot, and
    /// every value finite.
    ///
    /// # Errors
    ///
    /// The first [`WeightError`] encountered, in construction order.
    pub fn validate(&self) -> Result<(), WeightError> {
        let shapes = expected_shapes(self.kind, &self.config)?;
        if shapes.len() != self.params.len() {
            return Err(WeightError::ParamCount {
                expected: shapes.len(),
                found: self.params.len(),
            });
        }
        for (index, (param, &expected)) in self.params.iter().zip(&shapes).enumerate() {
            if param.shape() != expected {
                return Err(WeightError::ShapeMismatch {
                    index,
                    expected,
                    found: param.shape(),
                });
            }
            if !param.is_finite() {
                return Err(WeightError::NonFinite { index });
            }
        }
        Ok(())
    }

    /// Reconstructs the model these weights came from.
    ///
    /// The returned model predicts bit-identically to the one
    /// [`GnnModel::export_weights`] was called on: construction allocates
    /// the architecture's parameter slots, then every slot is overwritten
    /// with the checkpointed matrix.
    ///
    /// # Errors
    ///
    /// Any [`WeightError`] from [`Self::validate`] — an invalid weight set
    /// never reaches model construction.
    pub fn build_model(&self) -> Result<GnnModel, WeightError> {
        self.validate()?;
        // Initialization values are irrelevant (every parameter is
        // restored below); a fixed seed keeps construction deterministic.
        let mut rng = StdRng::seed_from_u64(0);
        let model = GnnModel::new(self.kind, self.config.clone(), &mut rng);
        model.restore(&self.params);
        Ok(model)
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                r * c
            })
            .sum()
    }
}

impl GnnModel {
    /// Exports the model's full serializable identity — architecture,
    /// hyper-parameters, and a snapshot of every trainable parameter.
    pub fn export_weights(&self) -> ModelWeights {
        ModelWeights {
            kind: self.kind(),
            config: self.config().clone(),
            params: self.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::Graph;

    fn model(kind: GnnKind, seed: u64) -> GnnModel {
        let mut rng = StdRng::seed_from_u64(seed);
        GnnModel::new(kind, ModelConfig::default(), &mut rng)
    }

    #[test]
    fn export_build_round_trips_predictions_for_all_architectures() {
        let g = Graph::complete(6).unwrap();
        for (i, &kind) in GnnKind::ALL.iter().enumerate() {
            let original = model(kind, 300 + i as u64);
            let rebuilt = original.export_weights().build_model().unwrap();
            assert_eq!(rebuilt.kind(), kind);
            assert_eq!(original.predict(&g), rebuilt.predict(&g), "{kind}");
        }
    }

    #[test]
    fn expected_shapes_match_constructed_models() {
        for &kind in &GnnKind::ALL {
            for hidden_dim in [1, 3, 32] {
                let config = ModelConfig {
                    hidden_dim,
                    ..ModelConfig::default()
                };
                let mut rng = StdRng::seed_from_u64(7);
                let m = GnnModel::new(kind, config.clone(), &mut rng);
                let shapes = expected_shapes(kind, &config).unwrap();
                let actual: Vec<(usize, usize)> =
                    m.parameters().iter().map(|p| p.shape()).collect();
                assert_eq!(shapes, actual, "{kind} hidden={hidden_dim}");
            }
        }
    }

    #[test]
    fn cross_architecture_weights_fail_typed() {
        let gcn = model(GnnKind::Gcn, 310).export_weights();
        let mislabeled = ModelWeights {
            kind: GnnKind::Gat,
            ..gcn
        };
        match mislabeled.build_model() {
            Err(WeightError::ParamCount { .. } | WeightError::ShapeMismatch { .. }) => {}
            other => panic!("expected a structural error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_reshaped_params_fail_typed() {
        let mut w = model(GnnKind::Gin, 311).export_weights();
        w.params.pop();
        assert!(matches!(
            w.validate(),
            Err(WeightError::ParamCount { .. })
        ));

        let mut w = model(GnnKind::Gin, 312).export_weights();
        w.params[0] = Matrix::zeros(1, 1);
        assert!(matches!(
            w.validate(),
            Err(WeightError::ShapeMismatch { index: 0, .. })
        ));
    }

    #[test]
    fn non_finite_weights_fail_typed() {
        let mut w = model(GnnKind::Gcn, 313).export_weights();
        let (r, c) = w.params[1].shape();
        w.params[1] = Matrix::full(r, c, f64::NAN);
        assert_eq!(w.validate(), Err(WeightError::NonFinite { index: 1 }));
    }

    #[test]
    fn bad_config_fails_before_construction() {
        let mut w = model(GnnKind::Gcn, 314).export_weights();
        w.config.layers = 0;
        assert!(matches!(w.validate(), Err(WeightError::BadConfig(_))));
        w.config.layers = 2;
        w.config.dropout = 1.5;
        assert!(matches!(w.validate(), Err(WeightError::BadConfig(_))));
    }
}
