//! The §4.1 training loop.
//!
//! Per-graph (batch size 1) regression of normalized `(γ, β)` targets with
//! MSE loss, Adam, and the paper's ReduceLROnPlateau schedule monitoring the
//! training loss. Models train for 100 epochs before evaluation.

use qrand::seq::SliceRandom;
use qrand::Rng;

use tensor::optim::{Adam, Optimizer};
use tensor::sched::ReduceLrOnPlateau;
use tensor::Matrix;

use crate::{GnnModel, GraphContext};

/// One training example: a graph context and its normalized `(γ, β)` label.
#[derive(Debug, Clone)]
pub struct Example {
    /// Precomputed graph operands.
    pub context: GraphContext,
    /// Normalized target in `[0,1]²` (see [`crate::normalize_target`]).
    pub target: [f64; 2],
}

/// Training hyper-parameters; defaults follow §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs (paper: 100).
    pub epochs: usize,
    /// Initial Adam learning rate (the paper does not state it; 0.01 with
    /// the plateau schedule converges on all four architectures).
    pub learning_rate: f64,
    /// Shuffle examples every epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            learning_rate: 0.01,
            shuffle: true,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for tests and CI-sized benches.
    pub fn quick(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            ..TrainConfig::default()
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (from 0).
    pub epoch: usize,
    /// Mean training MSE over the epoch.
    pub train_loss: f64,
    /// Learning rate in effect during the epoch.
    pub learning_rate: f64,
}

/// A recorded training divergence: the epoch whose loss went non-finite.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceEvent {
    /// Epoch index at which the loss stopped being finite.
    pub epoch: usize,
    /// The offending loss value (NaN or ±∞).
    pub loss: f64,
}

/// The full training history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainHistory {
    /// One entry per *completed* (finite-loss) epoch.
    pub epochs: Vec<EpochStats>,
    /// Set when training halted early on a non-finite loss; the returned
    /// model holds the best finite-epoch parameters, not the diverged ones.
    pub diverged: Option<DivergenceEvent>,
}

impl TrainHistory {
    /// Final training loss, or `None` before any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.train_loss)
    }

    /// Best (lowest) finite training loss seen.
    pub fn best_loss(&self) -> Option<f64> {
        self.epochs
            .iter()
            .map(|e| e.train_loss)
            .filter(|l| l.is_finite())
            .min_by(f64::total_cmp)
    }
}

/// Trains `model` on `examples` and returns the history.
///
/// Divergence guard: the per-example loss is checked for finiteness
/// *before* its gradients are applied. The first non-finite loss halts
/// training, restores the best finite-epoch parameters (the initial
/// weights if no epoch completed), and records a [`DivergenceEvent`] in
/// the history — a diverged trajectory costs the run its remaining epochs,
/// never its model.
///
/// # Panics
///
/// Panics if `examples` is empty.
pub fn train<R: Rng + ?Sized>(
    model: &GnnModel,
    examples: &[Example],
    config: &TrainConfig,
    rng: &mut R,
) -> TrainHistory {
    assert!(!examples.is_empty(), "training set must be non-empty");
    let mut optimizer = Adam::new(config.learning_rate);
    let mut scheduler = ReduceLrOnPlateau::paper_default();
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut history = TrainHistory::default();
    // Best-so-far weights, seeded with the initial ones so a divergence in
    // epoch 0 still leaves a usable (if untrained) model.
    let mut best: (f64, Vec<Matrix>) = (f64::INFINITY, model.snapshot());

    model.tape().set_training(true);
    'epochs: for epoch in 0..config.epochs {
        if config.shuffle {
            order.shuffle(rng);
        }
        let lr = optimizer.learning_rate();
        let mut total_loss = 0.0;
        for &i in &order {
            let example = &examples[i];
            model.tape().reset();
            let out = model.forward(&example.context, rng);
            let target = Matrix::row_vector(&example.target);
            let loss = out.mse(&target);
            let loss_value = loss.value()[(0, 0)];
            if !loss_value.is_finite() {
                history.diverged = Some(DivergenceEvent {
                    epoch,
                    loss: loss_value,
                });
                break 'epochs;
            }
            total_loss += loss_value;
            model.tape().backward(&loss);
            optimizer.step(model.parameters());
        }
        model.tape().reset();
        let train_loss = total_loss / examples.len() as f64;
        scheduler.step(train_loss, &mut optimizer);
        history.epochs.push(EpochStats {
            epoch,
            train_loss,
            learning_rate: lr,
        });
        if train_loss < best.0 {
            best = (train_loss, model.snapshot());
        }
    }
    model.tape().reset();
    if history.diverged.is_some() {
        model.restore(&best.1);
    }
    model.tape().set_training(false);
    history
}

/// Mean MSE of the model's (normalized) predictions over a labeled set,
/// with dropout disabled.
///
/// # Panics
///
/// Panics if `examples` is empty.
pub fn evaluate(model: &GnnModel, examples: &[Example]) -> f64 {
    assert!(!examples.is_empty(), "evaluation set must be non-empty");
    let total: f64 = examples
        .iter()
        .map(|ex| {
            let (gamma, beta) = model.predict_ctx(&ex.context);
            let predicted = crate::normalize_target(gamma, beta);
            let d0 = predicted[0] - ex.target[0];
            let d1 = predicted[1] - ex.target[1];
            (d0 * d0 + d1 * d1) / 2.0
        })
        .sum();
    total / examples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GnnKind, ModelConfig};
    use qgraph::features::FeatureConfig;
    use qgraph::Graph;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn toy_dataset() -> Vec<Example> {
        // Cycles map to one target, stars to another: learnable from
        // degree features alone.
        let mut examples = Vec::new();
        for n in 4..=9 {
            let g = Graph::cycle(n).unwrap();
            examples.push(Example {
                context: GraphContext::new(&g, &FeatureConfig::default(), 0.0),
                target: [0.2, 0.8],
            });
            let g = Graph::star(n).unwrap();
            examples.push(Example {
                context: GraphContext::new(&g, &FeatureConfig::default(), 0.0),
                target: [0.7, 0.3],
            });
        }
        examples
    }

    #[test]
    fn training_reduces_loss_for_every_architecture() {
        let data = toy_dataset();
        for &kind in &GnnKind::ALL {
            let mut rng = StdRng::seed_from_u64(101);
            let config = ModelConfig {
                dropout: 0.0, // deterministic toy check
                hidden_dim: 16,
                ..ModelConfig::default()
            };
            let model = GnnModel::new(kind, config, &mut rng);
            let history = train(&model, &data, &TrainConfig::quick(30), &mut rng);
            let first = history.epochs.first().unwrap().train_loss;
            let last = history.final_loss().unwrap();
            assert!(
                last < first * 0.8,
                "{kind:?}: loss {first} -> {last} did not improve"
            );
        }
    }

    #[test]
    fn trained_model_separates_the_two_classes() {
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(102);
        let config = ModelConfig {
            dropout: 0.0,
            hidden_dim: 16,
            ..ModelConfig::default()
        };
        let model = GnnModel::new(GnnKind::Gin, config, &mut rng);
        train(&model, &data, &TrainConfig::quick(60), &mut rng);
        // Held-out sizes.
        let cycle = Graph::cycle(10).unwrap();
        let star = Graph::star(10).unwrap();
        let (gc, _) = model.predict(&cycle);
        let (gs, _) = model.predict(&star);
        let nc = crate::normalize_target(gc, 0.0)[0];
        let ns = crate::normalize_target(gs, 0.0)[0];
        assert!(
            nc < ns,
            "cycle gamma ({nc}) should be below star gamma ({ns})"
        );
    }

    #[test]
    fn evaluate_is_zero_for_perfect_labels() {
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(103);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        // Self-labeling: evaluate against the model's own predictions.
        let self_labeled: Vec<Example> = data
            .iter()
            .map(|ex| {
                let (g, b) = model.predict_ctx(&ex.context);
                Example {
                    context: ex.context.clone(),
                    target: crate::normalize_target(g, b),
                }
            })
            .collect();
        assert!(evaluate(&model, &self_labeled) < 1e-18);
    }

    #[test]
    fn scheduler_reduces_learning_rate_on_plateau() {
        // Constant targets equal to the sigmoid's saturated region make
        // progress stall quickly; the recorded learning rate must drop.
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(104);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let history = train(&model, &data, &TrainConfig::quick(60), &mut rng);
        let first_lr = history.epochs.first().unwrap().learning_rate;
        let last_lr = history.epochs.last().unwrap().learning_rate;
        assert!(last_lr <= first_lr);
    }

    #[test]
    fn history_accessors() {
        let h = TrainHistory {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 0.5,
                    learning_rate: 0.01,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.2,
                    learning_rate: 0.01,
                },
            ],
            diverged: None,
        };
        assert_eq!(h.final_loss(), Some(0.2));
        assert_eq!(h.best_loss(), Some(0.2));
        assert_eq!(TrainHistory::default().final_loss(), None);
    }

    #[test]
    fn best_loss_ignores_non_finite_epochs() {
        let stats = |epoch, train_loss| EpochStats {
            epoch,
            train_loss,
            learning_rate: 0.01,
        };
        let h = TrainHistory {
            epochs: vec![stats(0, 0.4), stats(1, f64::NAN), stats(2, 0.3)],
            diverged: None,
        };
        assert_eq!(h.best_loss(), Some(0.3));
        let all_nan = TrainHistory {
            epochs: vec![stats(0, f64::NAN)],
            diverged: None,
        };
        assert_eq!(all_nan.best_loss(), None);
    }

    #[test]
    fn nan_target_halts_training_and_restores_weights() {
        // A poisoned label makes the very first loss NaN: training must
        // stop, record the divergence, and leave the model with its
        // pre-training (best finite) weights instead of NaN-soaked ones.
        let mut data = toy_dataset();
        data[0].target = [f64::NAN, 0.5];
        let mut rng = StdRng::seed_from_u64(106);
        let config = ModelConfig {
            dropout: 0.0,
            hidden_dim: 16,
            ..ModelConfig::default()
        };
        let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
        let g = Graph::cycle(10).unwrap();
        let before = model.predict(&g);
        let history = train(
            &model,
            &data,
            &TrainConfig {
                shuffle: false, // poisoned example is hit first
                ..TrainConfig::quick(20)
            },
            &mut rng,
        );
        let event = history.diverged.expect("divergence must be recorded");
        assert_eq!(event.epoch, 0);
        assert!(event.loss.is_nan());
        assert!(history.epochs.is_empty(), "no epoch completed");
        assert_eq!(model.predict(&g), before, "weights restored to initial");
    }

    #[test]
    fn infinite_loss_halts_with_infinite_event_loss() {
        // A target beyond ±1.3e154 makes (out − target)² overflow to +∞:
        // the squared-error path to divergence, distinct from NaN.
        let mut data = toy_dataset();
        let last = data.len() - 1;
        data[last].target = [1e155, 0.5];
        let mut rng = StdRng::seed_from_u64(107);
        let config = ModelConfig {
            dropout: 0.0,
            hidden_dim: 16,
            ..ModelConfig::default()
        };
        let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
        let history = train(
            &model,
            &data,
            &TrainConfig {
                shuffle: false, // poisoned example is hit last in epoch 0
                ..TrainConfig::quick(20)
            },
            &mut rng,
        );
        let event = history.diverged.expect("overflowed loss must diverge");
        assert_eq!(event.epoch, 0);
        assert_eq!(event.loss, f64::INFINITY);
        let g = Graph::cycle(10).unwrap();
        let (gamma, beta) = model.predict(&g);
        assert!(gamma.is_finite() && beta.is_finite());
        for e in &history.epochs {
            assert!(e.train_loss.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_rejected() {
        let mut rng = StdRng::seed_from_u64(105);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let _ = train(&model, &[], &TrainConfig::default(), &mut rng);
    }
}
