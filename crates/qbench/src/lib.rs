//! In-tree micro-benchmark harness.
//!
//! A minimal replacement for the subset of `criterion` this workspace
//! used: per-benchmark warmup, a calibrated batch size so sub-microsecond
//! bodies are still measurable with `Instant`, median/p95/mean over N
//! samples, and machine-readable JSON-lines output on stdout — one line
//! per benchmark, so `cargo bench | grep '^{'` pipes straight into any
//! log processor.
//!
//! ```no_run
//! use qbench::{black_box, Bench};
//!
//! let mut bench = Bench::from_env();
//! bench.bench("sum_1k", || (0..1000u64).map(black_box).sum::<u64>());
//! bench.finish();
//! ```
//!
//! Environment knobs: `QBENCH_SAMPLES` (default 30), `QBENCH_WARMUP_MS`
//! (default 50), `QBENCH_TARGET_MS` (per-sample batch target, default 10),
//! `QBENCH_FILTER` (substring filter on benchmark names).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Benchmark name.
    pub name: String,
    /// Median over samples.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Minimum over samples.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per timed sample (batch size).
    pub iters_per_sample: u64,
}

impl Stats {
    /// The JSON-lines record emitted for this benchmark.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"median_ns\":{:.1},\"p95_ns\":{:.1},\"mean_ns\":{:.1},\
             \"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            self.name,
            self.median_ns,
            self.p95_ns,
            self.mean_ns,
            self.min_ns,
            self.samples,
            self.iters_per_sample
        )
    }
}

/// The benchmark runner. Construct once per binary, call
/// [`Bench::bench`]/[`Bench::bench_with_input`] per benchmark, then
/// [`Bench::finish`].
#[derive(Debug)]
pub struct Bench {
    samples: usize,
    warmup_ms: u64,
    target_ms: u64,
    filter: Option<String>,
    smoke: bool,
    results: Vec<Stats>,
}

impl Bench {
    /// A runner with explicit settings.
    pub fn new(samples: usize, warmup_ms: u64, target_ms: u64) -> Self {
        Bench {
            samples: samples.max(3),
            warmup_ms,
            target_ms: target_ms.max(1),
            filter: None,
            smoke: false,
            results: Vec::new(),
        }
    }

    /// A runner configured from the environment (see module docs), with the
    /// first non-flag CLI argument doubling as a name filter — `cargo bench
    /// --bench simulator -- qaoa` runs only benchmarks matching "qaoa".
    pub fn from_env() -> Self {
        let get = |key: &str, default: u64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(default)
        };
        let mut bench = Bench::new(
            get("QBENCH_SAMPLES", 30) as usize,
            get("QBENCH_WARMUP_MS", 50),
            get("QBENCH_TARGET_MS", 10),
        );
        bench.filter = std::env::var("QBENCH_FILTER").ok().or_else(|| {
            std::env::args()
                .skip(1)
                .find(|a| !a.starts_with('-') && !a.is_empty())
        });
        // `cargo test` runs harness=false bench binaries with `--test`-ish
        // flags and expects them to be fast: collapse to a smoke run.
        if std::env::args().any(|a| a == "--test") {
            bench.samples = 3;
            bench.warmup_ms = 0;
            bench.target_ms = 1;
            bench.smoke = true;
        }
        bench
    }

    /// Overrides the per-benchmark sample count (chainable). Ignored in
    /// `--test` smoke mode, whose minimal settings are authoritative —
    /// benches tune sample counts for measurement, CI only needs to know
    /// the body runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        if !self.smoke {
            self.samples = samples.max(3);
        }
        self
    }

    /// Runs one benchmark. The closure's return value is passed through
    /// [`black_box`] so the body is not optimized away.
    pub fn bench<T>(&mut self, name: &str, mut body: impl FnMut() -> T) -> Option<&Stats> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        // Warmup: run for the configured wall-clock budget and estimate the
        // per-iteration cost for batch calibration.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        let mut per_iter_ns = loop {
            let t = Instant::now();
            black_box(body());
            let dt = t.elapsed().as_nanos() as u64;
            warmup_iters += 1;
            if warmup_start.elapsed().as_millis() as u64 >= self.warmup_ms || warmup_iters >= 10_000
            {
                break dt.max(1);
            }
        };
        // Refine the estimate with the mean over the whole warmup when we
        // had more than a couple of iterations (single-shot timing of a
        // fast body is mostly timer noise).
        if warmup_iters > 2 {
            let mean = warmup_start.elapsed().as_nanos() as u64 / warmup_iters;
            per_iter_ns = mean.max(1);
        }
        let iters = (self.target_ms * 1_000_000 / per_iter_ns).clamp(1, 10_000_000);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            sample_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let pick = |q: f64| {
            let idx = ((sample_ns.len() as f64 - 1.0) * q).round() as usize;
            sample_ns[idx]
        };
        let stats = Stats {
            name: name.to_string(),
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            mean_ns: sample_ns.iter().sum::<f64>() / sample_ns.len() as f64,
            min_ns: sample_ns[0],
            samples: sample_ns.len(),
            iters_per_sample: iters,
        };
        println!("{}", stats.to_json_line());
        self.results.push(stats);
        self.results.last()
    }

    /// [`Bench::bench`] with a labeled input, criterion-style: the name is
    /// `group/parameter`.
    pub fn bench_with_input<I: std::fmt::Display, T>(
        &mut self,
        group: &str,
        input: I,
        body: impl FnMut() -> T,
    ) -> Option<&Stats> {
        self.bench(&format!("{group}/{input}"), body)
    }

    /// All collected results.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// Prints a human-readable summary table to stderr (stdout stays pure
    /// JSON lines) and returns the number of benchmarks run.
    pub fn finish(&self) -> usize {
        eprintln!("{:<40} {:>12} {:>12} {:>12}", "benchmark", "median", "p95", "min");
        for s in &self.results {
            eprintln!(
                "{:<40} {:>9.1} ns {:>9.1} ns {:>9.1} ns",
                s.name, s.median_ns, s.p95_ns, s.min_ns
            );
        }
        self.results.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_ordered_stats() {
        let mut b = Bench::new(5, 0, 1);
        let s = b
            .bench("spin", || {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
            .expect("not filtered")
            .clone();
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert!(s.median_ns > 0.0);
        assert_eq!(s.samples, 5);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn json_line_is_well_formed() {
        let s = Stats {
            name: "x/8".into(),
            median_ns: 10.5,
            p95_ns: 12.0,
            mean_ns: 10.9,
            min_ns: 10.0,
            samples: 30,
            iters_per_sample: 1000,
        };
        let line = s.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"bench\":\"x/8\""));
        assert!(line.contains("\"median_ns\":10.5"));
        assert!(line.contains("\"iters_per_sample\":1000"));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut b = Bench::new(3, 0, 1);
        b.filter = Some("match".into());
        assert!(b.bench("other", || 1).is_none());
        assert!(b.bench("does_match_this", || 1).is_some());
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn bench_with_input_formats_name() {
        let mut b = Bench::new(3, 0, 1);
        let s = b.bench_with_input("group", 12, || 0).unwrap();
        assert_eq!(s.name, "group/12");
    }
}
