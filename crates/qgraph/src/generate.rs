//! Synthetic instance generators.
//!
//! The paper's dataset (§3.1) is "synthetic regular graphs ... with nodes
//! ranging from 2 to 15" and degrees 2–14. [`random_regular`] implements the
//! standard pairing-model (configuration-model) sampler with rejection of
//! self-loops and multi-edges, which samples asymptotically uniformly from
//! simple d-regular graphs. [`DatasetSpec`] reproduces the mixed-size,
//! mixed-degree dataset; [`erdos_renyi`] and the weighted wrappers support
//! the weighted-graph extension discussed in §7.

use qrand::seq::SliceRandom;
use qrand::Rng;

use crate::{Graph, GraphError};

/// Samples a simple d-regular graph on `n` nodes via the pairing model.
///
/// Each node contributes `degree` half-edge "stubs"; a uniformly random
/// perfect matching of stubs is drawn and repaired with degree-preserving
/// double-edge swaps until simple (restarting if repair stalls). Dense
/// degrees (`2d > n-1`) are sampled as the complement of a sparse regular
/// graph, which keeps generation fast all the way up to complete graphs.
/// The swap repair introduces a small, practically irrelevant bias relative
/// to the exactly uniform distribution.
///
/// # Errors
///
/// Returns [`GraphError::InvalidRegular`] unless `degree < n` and
/// `n * degree` is even (with `n >= 1`).
///
/// # Example
///
/// ```
/// use qrand::SeedableRng;
/// let mut rng = qrand::rngs::StdRng::seed_from_u64(7);
/// let g = qgraph::generate::random_regular(10, 3, &mut rng)?;
/// assert_eq!(g.regular_degree(), Some(3));
/// # Ok::<(), qgraph::GraphError>(())
/// ```
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    degree: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if degree >= n || !(n * degree).is_multiple_of(2) {
        return Err(GraphError::InvalidRegular { n, degree });
    }
    if degree == 0 {
        return Graph::empty(n);
    }
    // Dense graphs have vanishing acceptance under the pairing model, so
    // sample the sparse complement instead: the complement of a simple
    // (n-1-d)-regular graph is simple and d-regular, and n*(n-1-d) shares the
    // parity of n*d because n*(n-1) is even.
    if 2 * degree > n - 1 {
        let sparse = random_regular(n, n - 1 - degree, rng)?;
        let mut g = Graph::empty(n)?;
        for u in 0..n {
            for v in (u + 1)..n {
                if !sparse.has_edge(u, v) {
                    g.add_edge(u, v, 1.0)?;
                }
            }
        }
        return Ok(g);
    }
    'restart: loop {
        let mut stubs: Vec<usize> =
            (0..n).flat_map(|v| std::iter::repeat_n(v, degree)).collect();
        stubs.shuffle(rng);
        let mut edges: Vec<(usize, usize)> = stubs
            .chunks(2)
            .map(|p| if p[0] <= p[1] { (p[0], p[1]) } else { (p[1], p[0]) })
            .collect();
        if repair_pairing(&mut edges, rng) {
            let mut g = Graph::empty(n)?;
            for &(u, v) in &edges {
                g.add_edge(u, v, 1.0)?;
            }
            return Ok(g);
        }
        continue 'restart;
    }
}

/// Repairs a configuration-model pairing in place by double-edge swaps until
/// it is a simple graph. Returns `false` (caller restarts) if the repair does
/// not converge within a generous iteration budget.
fn repair_pairing<R: Rng + ?Sized>(edges: &mut [(usize, usize)], rng: &mut R) -> bool {
    use std::collections::HashSet;

    let budget = 200 * edges.len().max(1);
    for _ in 0..budget {
        // Index edges and find a violation.
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(edges.len());
        let mut bad_idx = None;
        for (i, &e) in edges.iter().enumerate() {
            if e.0 == e.1 || !seen.insert(e) {
                bad_idx = Some(i);
                break;
            }
        }
        let Some(i) = bad_idx else { return true };
        // Swap the bad pair with a random other pair; this preserves the
        // degree sequence.
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        let (x, y) = if rng.gen() { (c, d) } else { (d, c) };
        let e1 = if a <= x { (a, x) } else { (x, a) };
        let e2 = if b <= y { (b, y) } else { (y, b) };
        edges[i] = e1;
        edges[j] = e2;
    }
    false
}

/// Samples an Erdős–Rényi graph `G(n, p)`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `n == 0` and
/// [`GraphError::InvalidProbability`] if `p` is outside `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidProbability(p));
    }
    let mut g = Graph::empty(n)?;
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v, 1.0)?;
            }
        }
    }
    Ok(g)
}

/// Replaces every edge weight with an independent uniform sample from
/// `[lo, hi]`. Used for the weighted Max-Cut extension (§7).
///
/// # Errors
///
/// Returns [`GraphError::InvalidWeight`] if the interval is not finite or
/// `lo > hi`.
pub fn randomize_weights<R: Rng + ?Sized>(
    graph: &Graph,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        return Err(GraphError::InvalidWeight(if lo.is_finite() { hi } else { lo }));
    }
    let triples: Vec<(usize, usize, f64)> = graph
        .edges()
        .iter()
        .map(|e| (e.u, e.v, rng.gen_range(lo..=hi)))
        .collect();
    Graph::from_weighted_edges(graph.n(), &triples)
}

/// Specification of the paper's synthetic dataset (§3.1, Fig. 2).
///
/// Graphs are sampled by drawing a size `n` uniformly from
/// `min_nodes..=max_nodes` and then a feasible degree uniformly from
/// `min_degree..=min(max_degree, n - 1)` (adjusted for parity). The defaults
/// mirror the paper: 9598 instances, sizes 2–15, degrees 2–14.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Number of graphs to generate (paper: 9598).
    pub count: usize,
    /// Smallest graph size (paper: 2).
    pub min_nodes: usize,
    /// Largest graph size (paper: 15).
    pub max_nodes: usize,
    /// Smallest degree (paper: 2... size permitting).
    pub min_degree: usize,
    /// Largest degree (paper: 14, capped at n-1 per graph).
    pub max_degree: usize,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            count: 9598,
            min_nodes: 2,
            max_nodes: 15,
            min_degree: 2,
            max_degree: 14,
        }
    }
}

impl DatasetSpec {
    /// A scaled-down spec with `count` graphs and the paper's size/degree
    /// ranges, for tests and CI-sized benches.
    pub fn with_count(count: usize) -> Self {
        DatasetSpec {
            count,
            ..DatasetSpec::default()
        }
    }

    /// Samples one (size, degree) pair that admits a simple regular graph.
    fn sample_shape<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, usize) {
        loop {
            let n = rng.gen_range(self.min_nodes..=self.max_nodes);
            let hi = self.max_degree.min(n.saturating_sub(1));
            let lo = self.min_degree.min(hi).max(1);
            if hi < 1 {
                // n == 1 cannot host any edge; resample.
                continue;
            }
            let d = rng.gen_range(lo..=hi);
            // Fix parity: n*d must be even. Prefer nudging d down, else up.
            let d = if (n * d) % 2 == 0 {
                d
            } else if d > lo && (n * (d - 1)) % 2 == 0 {
                d - 1
            } else if d < hi {
                d + 1
            } else {
                continue;
            };
            if d < n && (n * d) % 2 == 0 {
                return (n, d);
            }
        }
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidDimension`] if the spec ranges are
    /// inverted or admit no feasible graph.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Vec<Graph>, GraphError> {
        if self.min_nodes < 2 || self.min_nodes > self.max_nodes {
            return Err(GraphError::InvalidDimension(format!(
                "node range [{}, {}] invalid (need 2 <= min <= max)",
                self.min_nodes, self.max_nodes
            )));
        }
        if self.min_degree > self.max_degree {
            return Err(GraphError::InvalidDimension(format!(
                "degree range [{}, {}] invalid",
                self.min_degree, self.max_degree
            )));
        }
        let mut graphs = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let (n, d) = self.sample_shape(rng);
            graphs.push(random_regular(n, d, rng)?);
        }
        Ok(graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn regular_generator_produces_regular_simple_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, d) in &[(4, 3), (6, 2), (10, 3), (15, 4), (8, 7)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert_eq!(g.n(), n);
            assert_eq!(g.regular_degree(), Some(d), "n={n} d={d}");
            assert_eq!(g.m(), n * d / 2);
        }
    }

    #[test]
    fn regular_generator_rejects_infeasible_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(
            random_regular(5, 3, &mut rng),
            Err(GraphError::InvalidRegular { .. })
        )); // odd n*d
        assert!(matches!(
            random_regular(4, 4, &mut rng),
            Err(GraphError::InvalidRegular { .. })
        )); // d >= n
        assert!(matches!(
            random_regular(0, 0, &mut rng),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn regular_degree_zero_is_edgeless() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular(5, 0, &mut rng).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        let g0 = erdos_renyi(6, 0.0, &mut rng).unwrap();
        assert_eq!(g0.m(), 0);
        let g1 = erdos_renyi(6, 1.0, &mut rng).unwrap();
        assert_eq!(g1.m(), 15);
        assert!(erdos_renyi(6, 1.5, &mut rng).is_err());
        assert!(erdos_renyi(6, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn randomize_weights_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Graph::complete(5).unwrap();
        let w = randomize_weights(&g, 0.5, 2.0, &mut rng).unwrap();
        assert_eq!(w.m(), g.m());
        for e in w.edges() {
            assert!(e.weight >= 0.5 && e.weight <= 2.0);
        }
        assert!(randomize_weights(&g, 2.0, 1.0, &mut rng).is_err());
    }

    #[test]
    fn dataset_spec_default_matches_paper() {
        let spec = DatasetSpec::default();
        assert_eq!(spec.count, 9598);
        assert_eq!(spec.min_nodes, 2);
        assert_eq!(spec.max_nodes, 15);
        assert_eq!(spec.max_degree, 14);
    }

    #[test]
    fn dataset_generation_respects_ranges() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = DatasetSpec::with_count(200);
        let graphs = spec.generate(&mut rng).unwrap();
        assert_eq!(graphs.len(), 200);
        for g in &graphs {
            assert!(g.n() >= 2 && g.n() <= 15);
            let d = g.regular_degree().expect("dataset graphs are regular");
            assert!(d <= 14);
            assert!(d < g.n());
        }
    }

    #[test]
    fn dataset_generation_rejects_bad_spec() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut spec = DatasetSpec::with_count(1);
        spec.min_nodes = 10;
        spec.max_nodes = 5;
        assert!(spec.generate(&mut rng).is_err());
        let mut spec = DatasetSpec::with_count(1);
        spec.min_degree = 9;
        spec.max_degree = 3;
        assert!(spec.generate(&mut rng).is_err());
    }

    #[test]
    fn dataset_generation_is_seed_deterministic() {
        let spec = DatasetSpec::with_count(20);
        let a = spec.generate(&mut StdRng::seed_from_u64(42)).unwrap();
        let b = spec.generate(&mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(a, b);
    }
}
