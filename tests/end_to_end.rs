//! End-to-end pipeline tests: the paper's experiment at test scale.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::train::TrainConfig;
use gnn::GnnKind;
use qaoa_gnn::dataset::{Dataset, LabelConfig};
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qgraph::generate::DatasetSpec;

fn test_config() -> PipelineConfig {
    PipelineConfig {
        dataset: DatasetSpec::with_count(48),
        labeling: LabelConfig::quick(80),
        training: TrainConfig::quick(12),
        test_size: 12,
        ..PipelineConfig::paper_scale()
    }
}

/// Every architecture must run the whole pipeline and produce a coherent
/// report; labels are computed once and shared like the fig5 binary does.
#[test]
fn all_architectures_complete_the_pipeline() {
    let config = test_config();
    let dataset = Dataset::generate(&config.dataset, &config.labeling, config.seed)
        .expect("valid spec");
    for kind in GnnKind::ALL {
        let mut rng = StdRng::seed_from_u64(301);
        let p = Pipeline::run_on_dataset(kind, dataset.clone(), &config, &mut rng);
        assert_eq!(p.kind, kind);
        assert_eq!(p.report.per_graph.len(), 12, "{kind}");
        assert!(p.test_mse.is_finite() && p.test_mse >= 0.0, "{kind}");
        assert!(
            p.report.mean_improvement.abs() <= 100.0,
            "{kind}: improvement out of range"
        );
        assert!(
            (0.0..=1.0).contains(&p.report.win_rate()),
            "{kind}: bad win rate"
        );
        for c in &p.report.per_graph {
            assert!((0.0..=1.0 + 1e-9).contains(&c.random_ratio), "{kind}");
            assert!((0.0..=1.0 + 1e-9).contains(&c.gnn_ratio), "{kind}");
        }
        // Training should have made progress on the regression loss.
        let first = p.history.epochs.first().unwrap().train_loss;
        let best = p.history.best_loss().unwrap();
        assert!(best <= first, "{kind}: training never improved");
    }
}

/// The same seed must reproduce the identical pipeline result (the paper's
/// comparisons depend on deterministic splits).
#[test]
fn pipeline_is_deterministic() {
    let config = test_config();
    let dataset = Dataset::generate(&config.dataset, &config.labeling, config.seed)
        .expect("valid spec");
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        Pipeline::run_on_dataset(GnnKind::Gcn, dataset.clone(), &config, &mut rng)
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.report, b.report);
    assert_eq!(a.test_mse, b.test_mse);
    assert_eq!(a.history, b.history);
    let c = run(8);
    // A different seed almost surely gives a different trained model.
    assert_ne!(a.report, c.report);
}

/// A trained model should, on average across the test set, not be
/// dramatically worse than random initialization — and the evaluation's
/// fixed-parameter setting means both conditions share the same scale.
#[test]
fn trained_gnn_is_competitive_with_random_init() {
    let config = PipelineConfig {
        dataset: DatasetSpec::with_count(90),
        labeling: LabelConfig::quick(120),
        training: TrainConfig::quick(25),
        test_size: 20,
        ..PipelineConfig::paper_scale()
    };
    let mut rng = StdRng::seed_from_u64(303);
    let p = Pipeline::run(GnnKind::Gin, &config, &mut rng);
    // The paper reports ~+3.7 pts for GIN at full scale with std ~10. At
    // this reduced scale we only require the GNN not to lose badly: the
    // mean improvement must exceed -5 points.
    assert!(
        p.report.mean_improvement > -5.0,
        "GIN mean improvement {} pts is implausibly bad",
        p.report.mean_improvement
    );
    // And the trained predictor must beat the *untrained* predictor at the
    // task it was trained on: regressing canonicalized (γ, β) labels.
    let mut rng2 = StdRng::seed_from_u64(304);
    let untrained = gnn::GnnModel::new(GnnKind::Gin, config.model.clone(), &mut rng2);
    let fresh = Dataset::generate(&DatasetSpec::with_count(16), &config.labeling, 9999)
        .expect("valid spec");
    let examples = qaoa_gnn::pipeline::to_examples(&fresh, &config.model);
    let trained_mse = gnn::train::evaluate(&p.model, &examples);
    let untrained_mse = gnn::train::evaluate(&untrained, &examples);
    assert!(
        trained_mse <= untrained_mse + 0.01,
        "training should reduce regression error: trained {trained_mse} vs untrained {untrained_mse}"
    );
}

/// `from_env` selects scales correctly.
#[test]
fn config_from_env_defaults_to_quick() {
    // The test environment does not set QAOA_GNN_FULL.
    if std::env::var("QAOA_GNN_FULL").is_ok() {
        return; // user explicitly asked for full scale; skip
    }
    let config = PipelineConfig::from_env();
    assert_eq!(config.dataset.count, PipelineConfig::quick().dataset.count);
}
