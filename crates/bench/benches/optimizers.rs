//! Criterion benchmarks of the classical outer-loop optimizers — the cost
//! of labeling one dataset entry (§3.1 does this 9598 times at 500
//! iterations each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use qaoa::optimize::{FiniteDiffAdam, GridSearch, Maximizer, NelderMead, Spsa};
use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};

fn labeled_objective() -> impl Fn(&[f64]) -> f64 {
    let mut rng = StdRng::seed_from_u64(11);
    let graph = qgraph::generate::random_regular(10, 3, &mut rng).expect("feasible shape");
    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&graph));
    move |flat: &[f64]| {
        let params = Params::from_flat(flat).expect("even length");
        circuit.expectation(&params)
    }
}

fn bench_optimizers_50_iters(c: &mut Criterion) {
    let objective = labeled_objective();
    let start = [0.3, 0.2];
    let mut group = c.benchmark_group("optimize_50_iters_n10");
    group.sample_size(10);

    group.bench_function("nelder_mead", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            NelderMead::new(50).maximize(&objective, &start, &mut rng)
        });
    });
    group.bench_function("spsa", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            Spsa::new(50).maximize(&objective, &start, &mut rng)
        });
    });
    group.bench_function("finite_diff_adam", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            FiniteDiffAdam::new(50).maximize(&objective, &start, &mut rng)
        });
    });
    group.bench_function("grid_32x32", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            GridSearch { resolution: 32 }.maximize(&objective, &start, &mut rng)
        });
    });
    group.finish();
}

fn bench_labeling_budget(c: &mut Criterion) {
    // Full paper budget (500 Nelder–Mead iterations) on one mid-size graph.
    let objective = labeled_objective();
    let mut group = c.benchmark_group("label_one_graph");
    group.sample_size(10);
    for iters in [100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                NelderMead::new(iters).maximize(&objective, &[0.3, 0.2], &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers_50_iters, bench_labeling_budget);
criterion_main!(benches);
