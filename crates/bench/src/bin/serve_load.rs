//! Closed-loop load bench for the concurrent serving loop.
//!
//! Drives synthetic traffic through [`qaoa_gnn::ServeLoop`] in two phases
//! and verifies the tentpole guarantees end to end:
//!
//! 1. **Closed loop** — `submitters` threads each keep exactly one request
//!    outstanding (submit → wait → repeat), the classic closed-loop
//!    arrival pattern that measures un-queued service latency. While the
//!    phase runs, a swapper thread publishes `swaps` retrained artifacts
//!    mid-traffic; every request must complete (zero drops) and at least
//!    two artifact generations must be observed in the responses.
//! 2. **Open loop (forced saturation)** — submitters fire a burst of
//!    requests *without* waiting, which drives the bounded queue through
//!    its shed watermark and into hard capacity. Excess load must shed to
//!    the fixed-angle rung (bounded memory), and still: one reply per
//!    request, zero drops, zero typed rejections.
//!
//! Reports p50/p99/p999 latency and saturation throughput, and appends a
//! CSV row per phase to `target/experiments/serve_load_<cores>core.csv`.
//! Simulator verification is disabled (`verify_max_nodes = 0`), as a
//! throughput deployment would configure it; the bench measures the
//! serving loop, not the simulator.
//!
//! ```text
//! cargo run --release -p qaoa-gnn-bench --bin serve_load            # 1M+ requests
//! cargo run --release -p qaoa-gnn-bench --bin serve_load -- --smoke # CI-sized
//! ```
//!
//! Flags: `--requests N` (closed-loop total, default 1_000_000),
//! `--burst N` (open-loop total, default 200_000), `--swaps N` (default 3),
//! `--workers N` (default auto), `--submitters N` (default 4),
//! `--smoke` (20_000 + 8_000 requests, everything else identical).

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::time::Instant;

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel};
use qaoa_gnn::dataset::LabelReport;
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn::serve::ServeRequest;
use qaoa_gnn::serve_loop::{LoopConfig, ServeLoop};
use qaoa_gnn::{RunArtifact, ServeConfig, TrainingEnvelope};
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

fn fail(msg: &str) -> ExitCode {
    eprintln!("FAIL: {msg}");
    ExitCode::FAILURE
}

/// A valid artifact whose weights depend on `seed`, so successive swaps
/// publish genuinely different models (stand-ins for retrained runs).
fn artifact_with_seed(seed: u64) -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = GnnModel::new(
        GnnKind::Gcn,
        gnn::ModelConfig {
            hidden_dim: 4,
            ..gnn::ModelConfig::default()
        },
        &mut rng,
    );
    RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: seed,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    }
}

/// In-envelope request pool: a mix of small graph shapes, pre-built once
/// so the hot loop measures serving, not graph construction.
fn request_pool() -> Vec<Graph> {
    let mut pool = Vec::new();
    for n in 3..=12 {
        pool.push(Graph::cycle(n).expect("cycle"));
    }
    for n in 3..=8 {
        pool.push(Graph::complete(n).expect("complete"));
    }
    pool
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct PhaseReport {
    name: &'static str,
    requests: u64,
    elapsed_secs: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    shed: u64,
    rejected: u64,
    generations_seen: usize,
}

impl PhaseReport {
    fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed_secs
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let closed_total = parse_flag(&args, "--requests").unwrap_or(if smoke { 20_000 } else { 1_000_000 });
    let burst_total = parse_flag(&args, "--burst").unwrap_or(if smoke { 8_000 } else { 200_000 });
    let swaps = parse_flag(&args, "--swaps").unwrap_or(3);
    let submitters = parse_flag(&args, "--submitters").unwrap_or(4);
    let workers = parse_flag(&args, "--workers").unwrap_or(0);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // Small queue so the open-loop burst reliably crosses the watermark
    // and capacity even on a 1-core container.
    let config = LoopConfig::default()
        .with_workers(workers)
        .with_queue_capacity(512)
        .with_shed_watermark(384)
        .with_serve(ServeConfig::default().with_verify_max_nodes(0));
    let serve = ServeLoop::new(artifact_with_seed(9000), config);
    let pool = request_pool();

    println!(
        "serve_load: {closed_total} closed-loop + {burst_total} open-loop requests, \
         {swaps} mid-traffic swaps, {submitters} submitters, {cores} core(s)"
    );

    // ---- Phase 1: closed loop with mid-traffic hot-swaps -------------
    let completed = AtomicU64::new(0);
    let shed_seen = AtomicU64::new(0);
    let rejected_seen = AtomicU64::new(0);
    let generation_mask = AtomicU64::new(0); // bit per generation observed
    let per_thread = closed_total / submitters;
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(per_thread * submitters);

    std::thread::scope(|scope| {
        // Swapper: publish retrained artifacts at even progress intervals.
        let swapper = scope.spawn(|| {
            for i in 0..swaps {
                let trigger = ((i + 1) * per_thread * submitters) as u64 / (swaps + 1) as u64;
                while completed.load(SeqCst) < trigger {
                    std::thread::yield_now();
                }
                serve
                    .swap_artifact(artifact_with_seed(9100 + i as u64))
                    .expect("mid-traffic hot-swap");
            }
        });
        let submit_handles: Vec<_> = (0..submitters)
            .map(|t| {
                let serve = &serve;
                let pool = &pool;
                let completed = &completed;
                let shed_seen = &shed_seen;
                let rejected_seen = &rejected_seen;
                let generation_mask = &generation_mask;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    for i in 0..per_thread {
                        let graph = pool[(t + i * 7) % pool.len()].clone();
                        let begin = Instant::now();
                        let done = serve.handle_wait(ServeRequest::from_graph(graph));
                        local.push(begin.elapsed().as_micros() as u64);
                        if done.response.was_shed() {
                            shed_seen.fetch_add(1, SeqCst);
                        }
                        if done.response.error().is_some() {
                            rejected_seen.fetch_add(1, SeqCst);
                        }
                        generation_mask.fetch_or(1 << done.generation.min(63), SeqCst);
                        completed.fetch_add(1, SeqCst);
                    }
                    local
                })
            })
            .collect();
        for handle in submit_handles {
            latencies.extend(handle.join().expect("submitter"));
        }
        swapper.join().expect("swapper");
    });
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let closed = PhaseReport {
        name: "closed_loop",
        requests: latencies.len() as u64,
        elapsed_secs: elapsed,
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        p999: percentile(&latencies, 99.9),
        shed: shed_seen.load(SeqCst),
        rejected: rejected_seen.load(SeqCst),
        generations_seen: generation_mask.load(SeqCst).count_ones() as usize,
    };

    // ---- Phase 2: open-loop burst into forced saturation -------------
    let start = Instant::now();
    let mut burst_latencies: Vec<u64> = Vec::with_capacity(burst_total);
    let mut burst_shed = 0u64;
    let mut burst_rejected = 0u64;
    let burst_begin = Instant::now();
    let tickets: Vec<_> = (0..burst_total)
        .map(|i| serve.submit(ServeRequest::from_graph(pool[i % pool.len()].clone())))
        .collect();
    for ticket in tickets {
        let done = ticket.wait();
        burst_latencies.push(burst_begin.elapsed().as_micros() as u64);
        if done.response.was_shed() {
            burst_shed += 1;
        }
        if done.response.error().is_some() {
            burst_rejected += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    burst_latencies.sort_unstable();
    let stats = serve.stats();
    let open = PhaseReport {
        name: "open_loop_saturation",
        requests: burst_latencies.len() as u64,
        elapsed_secs: elapsed,
        p50: percentile(&burst_latencies, 50.0),
        p99: percentile(&burst_latencies, 99.0),
        p999: percentile(&burst_latencies, 99.9),
        shed: burst_shed,
        rejected: burst_rejected,
        generations_seen: closed.generations_seen,
    };

    // ---- Report + invariant checks -----------------------------------
    for phase in [&closed, &open] {
        println!(
            "{:22} {:>9} req in {:7.2}s = {:>9.0} req/s   p50 {:>7}µs  p99 {:>7}µs  p999 {:>7}µs  shed {:>7}  rejected {}",
            phase.name,
            phase.requests,
            phase.elapsed_secs,
            phase.throughput(),
            phase.p50,
            phase.p99,
            phase.p999,
            phase.shed,
            phase.rejected,
        );
    }
    println!(
        "swaps {} (generations observed in responses: {}), queue max depth {} (capacity 512), \
         totals: served {} shed {} rejected {}",
        stats.swaps, closed.generations_seen, stats.max_depth, stats.served, stats.shed, stats.rejected,
    );

    let total_expected = (per_thread * submitters + burst_total) as u64;
    if stats.total() != total_expected {
        return fail(&format!(
            "dropped requests: {} answered of {} submitted",
            stats.total(),
            total_expected
        ));
    }
    if stats.rejected != 0 {
        return fail(&format!("{} requests rejected; expected 0", stats.rejected));
    }
    if stats.swaps != swaps as u64 {
        return fail(&format!("{} swaps succeeded of {swaps} attempted", stats.swaps));
    }
    if swaps > 0 && closed.generations_seen < 2 {
        return fail("no response was served from a post-swap generation (swap not mid-traffic)");
    }
    if stats.max_depth > 512 {
        return fail(&format!("queue exceeded its bound: max depth {}", stats.max_depth));
    }
    if burst_total > 2_000 && open.shed == 0 {
        return fail("open-loop burst never shed; saturation path unexercised");
    }

    // ---- CSV ---------------------------------------------------------
    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let csv = dir.join(format!("serve_load_{cores}core.csv"));
    let mut out = String::from(
        "phase,requests,elapsed_s,throughput_rps,p50_us,p99_us,p999_us,shed,rejected,swaps,max_depth\n",
    );
    for phase in [&closed, &open] {
        out.push_str(&format!(
            "{},{},{:.3},{:.0},{},{},{},{},{},{},{}\n",
            phase.name,
            phase.requests,
            phase.elapsed_secs,
            phase.throughput(),
            phase.p50,
            phase.p99,
            phase.p999,
            phase.shed,
            phase.rejected,
            stats.swaps,
            stats.max_depth,
        ));
    }
    if let Err(e) = std::fs::write(&csv, out) {
        return fail(&format!("writing {}: {e}", csv.display()));
    }
    println!("wrote {}", csv.display());
    println!("serve_load OK: zero drops, zero rejections, {} mid-traffic swaps", stats.swaps);
    ExitCode::SUCCESS
}
