//! Gate kernels.
//!
//! All gates mutate a [`StateVector`] in place. Rotation conventions follow
//! the standard exponential form: `RX(θ) = e^{-iθX/2}`, `RZ(θ) = e^{-iθZ/2}`,
//! `RZZ(θ) = e^{-iθ Z⊗Z / 2}`. QAOA's mixer layer `e^{-iβ Σ X_j}` is then
//! [`rx_all`] with angle `2β`, and the Max-Cut phase separator on an edge is
//! an [`rzz`] (or, faster, the whole-cost diagonal in [`crate::diagonal`]).

use crate::{Complex, StateVector};

/// Applies an arbitrary single-qubit unitary `[[a, b], [c, d]]` to `qubit`.
///
/// # Panics
///
/// Panics if `qubit >= psi.num_qubits()`.
pub fn single_qubit(psi: &mut StateVector, qubit: usize, matrix: [[Complex; 2]; 2]) {
    let n = psi.num_qubits();
    assert!(qubit < n, "qubit {qubit} out of range for {n} qubits");
    let stride = 1usize << qubit;
    let dim = psi.dim();
    let (re, im) = psi.re_im_mut();
    let mut base = 0;
    while base < dim {
        for offset in 0..stride {
            let i0 = base + offset;
            let i1 = i0 + stride;
            let a0 = Complex::new(re[i0], im[i0]);
            let a1 = Complex::new(re[i1], im[i1]);
            let y0 = matrix[0][0] * a0 + matrix[0][1] * a1;
            let y1 = matrix[1][0] * a0 + matrix[1][1] * a1;
            re[i0] = y0.re;
            im[i0] = y0.im;
            re[i1] = y1.re;
            im[i1] = y1.im;
        }
        base += 2 * stride;
    }
}

/// Hadamard gate.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn h(psi: &mut StateVector, qubit: usize) {
    let s = Complex::from(std::f64::consts::FRAC_1_SQRT_2);
    single_qubit(psi, qubit, [[s, s], [s, -s]]);
}

/// Pauli-X gate.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn x(psi: &mut StateVector, qubit: usize) {
    single_qubit(
        psi,
        qubit,
        [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
    );
}

/// Pauli-Z gate.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn z(psi: &mut StateVector, qubit: usize) {
    single_qubit(
        psi,
        qubit,
        [[Complex::ONE, Complex::ZERO], [Complex::ZERO, -Complex::ONE]],
    );
}

/// `RX(θ) = e^{-iθX/2}` rotation.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn rx(psi: &mut StateVector, qubit: usize, theta: f64) {
    let c = Complex::from((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    single_qubit(psi, qubit, [[c, s], [s, c]]);
}

/// `RY(θ) = e^{-iθY/2}` rotation.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn ry(psi: &mut StateVector, qubit: usize, theta: f64) {
    let c = Complex::from((theta / 2.0).cos());
    let s = Complex::from((theta / 2.0).sin());
    single_qubit(psi, qubit, [[c, -s], [s, c]]);
}

/// `RZ(θ) = e^{-iθZ/2}` rotation (diagonal, phase-only).
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn rz(psi: &mut StateVector, qubit: usize, theta: f64) {
    let n = psi.num_qubits();
    assert!(qubit < n, "qubit {qubit} out of range for {n} qubits");
    let phase0 = Complex::cis(-theta / 2.0);
    let phase1 = Complex::cis(theta / 2.0);
    let dim = psi.dim();
    let (re, im) = psi.re_im_mut();
    for i in 0..dim {
        let a = Complex::new(re[i], im[i])
            * if (i >> qubit) & 1 == 0 { phase0 } else { phase1 };
        re[i] = a.re;
        im[i] = a.im;
    }
}

/// Controlled-NOT with the given control and target.
///
/// # Panics
///
/// Panics if either qubit is out of range or they coincide.
pub fn cnot(psi: &mut StateVector, control: usize, target: usize) {
    let n = psi.num_qubits();
    assert!(control < n && target < n, "qubit out of range for {n} qubits");
    assert_ne!(control, target, "control and target must differ");
    let dim = psi.dim();
    let (re, im) = psi.re_im_mut();
    for i in 0..dim {
        // Swap each |control=1, target=0⟩ amplitude with its target-flipped
        // partner exactly once.
        if (i >> control) & 1 == 1 && (i >> target) & 1 == 0 {
            let j = i | (1 << target);
            re.swap(i, j);
            im.swap(i, j);
        }
    }
}

/// `RZZ(θ) = e^{-iθ Z⊗Z / 2}` two-qubit interaction (diagonal).
///
/// # Panics
///
/// Panics if either qubit is out of range or they coincide.
pub fn rzz(psi: &mut StateVector, qubit_a: usize, qubit_b: usize, theta: f64) {
    let n = psi.num_qubits();
    assert!(qubit_a < n && qubit_b < n, "qubit out of range for {n} qubits");
    assert_ne!(qubit_a, qubit_b, "rzz qubits must differ");
    let same = Complex::cis(-theta / 2.0);
    let diff = Complex::cis(theta / 2.0);
    let dim = psi.dim();
    let (re, im) = psi.re_im_mut();
    for i in 0..dim {
        let za = (i >> qubit_a) & 1;
        let zb = (i >> qubit_b) & 1;
        let a = Complex::new(re[i], im[i]) * if za == zb { same } else { diff };
        re[i] = a.re;
        im[i] = a.im;
    }
}

/// Applies [`h`] to every qubit — turns `|0...0⟩` into `|+⟩^⊗n`.
pub fn h_all(psi: &mut StateVector) {
    for q in 0..psi.num_qubits() {
        h(psi, q);
    }
}

/// Applies [`rx`] with the same angle to every qubit — the QAOA mixer layer
/// `e^{-iβ Σ X_j}` when called with `theta = 2β`.
pub fn rx_all(psi: &mut StateVector, theta: f64) {
    for q in 0..psi.num_qubits() {
        rx(psi, q, theta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn h_creates_plus_state() {
        let mut psi = StateVector::zero_state(1);
        h(&mut psi, 0);
        let s = 1.0 / 2f64.sqrt();
        assert!(close(psi.amplitude(0), Complex::from(s)));
        assert!(close(psi.amplitude(1), Complex::from(s)));
    }

    #[test]
    fn h_squared_is_identity() {
        let mut psi = StateVector::uniform_superposition(3);
        // Make it less symmetric first.
        rz(&mut psi, 1, 0.7);
        let before = psi.clone();
        h(&mut psi, 2);
        h(&mut psi, 2);
        assert!(before
            .to_amplitudes()
            .iter()
            .zip(psi.to_amplitudes())
            .all(|(a, b)| close(*a, b)));
    }

    #[test]
    fn h_all_matches_uniform_superposition() {
        let mut psi = StateVector::zero_state(4);
        h_all(&mut psi);
        let uniform = StateVector::uniform_superposition(4);
        assert!((psi.fidelity(&uniform) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut psi = StateVector::zero_state(2);
        x(&mut psi, 1);
        assert!(close(psi.amplitude(0b10), Complex::ONE));
    }

    #[test]
    fn z_phases_one_component() {
        let mut psi = StateVector::uniform_superposition(1);
        z(&mut psi, 0);
        assert!(close(psi.amplitude(0), Complex::from(1.0 / 2f64.sqrt())));
        assert!(close(psi.amplitude(1), Complex::from(-1.0 / 2f64.sqrt())));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let mut psi = StateVector::zero_state(1);
        rx(&mut psi, 0, PI);
        // RX(π)|0⟩ = -i|1⟩.
        assert!(close(psi.amplitude(1), Complex::new(0.0, -1.0)));
        assert!(close(psi.amplitude(0), Complex::ZERO));
    }

    #[test]
    fn ry_pi_half_rotates_to_plus() {
        let mut psi = StateVector::zero_state(1);
        ry(&mut psi, 0, PI / 2.0);
        let s = 1.0 / 2f64.sqrt();
        assert!(close(psi.amplitude(0), Complex::from(s)));
        assert!(close(psi.amplitude(1), Complex::from(s)));
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let mut psi = StateVector::uniform_superposition(1);
        rz(&mut psi, 0, PI);
        // e^{-iπ/2}|0⟩ + e^{iπ/2}|1⟩ up to normalization: -i|0⟩ + i|1⟩ scaled.
        let s = 1.0 / 2f64.sqrt();
        assert!(close(psi.amplitude(0), Complex::new(0.0, -s)));
        assert!(close(psi.amplitude(1), Complex::new(0.0, s)));
    }

    #[test]
    fn cnot_entangles() {
        let mut psi = StateVector::zero_state(2);
        h(&mut psi, 0);
        cnot(&mut psi, 0, 1);
        let s = 1.0 / 2f64.sqrt();
        assert!(close(psi.amplitude(0b00), Complex::from(s)));
        assert!(close(psi.amplitude(0b11), Complex::from(s)));
        assert!(close(psi.amplitude(0b01), Complex::ZERO));
        assert!(close(psi.amplitude(0b10), Complex::ZERO));
    }

    #[test]
    fn cnot_involution() {
        let mut psi = StateVector::uniform_superposition(3);
        rz(&mut psi, 0, 0.3);
        let before = psi.clone();
        cnot(&mut psi, 0, 2);
        cnot(&mut psi, 0, 2);
        assert!((psi.fidelity(&before) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rzz_equals_cnot_rz_cnot() {
        // Standard decomposition: RZZ(θ) on (a,b) = CNOT(a,b) RZ_b(θ) CNOT(a,b).
        let theta = 0.917;
        let mut direct = StateVector::uniform_superposition(2);
        rz(&mut direct, 0, 0.2); // asymmetrize
        let mut decomposed = direct.clone();
        rzz(&mut direct, 0, 1, theta);
        cnot(&mut decomposed, 0, 1);
        rz(&mut decomposed, 1, theta);
        cnot(&mut decomposed, 0, 1);
        assert!((direct.fidelity(&decomposed) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gates_preserve_norm() {
        let mut psi = StateVector::uniform_superposition(4);
        h(&mut psi, 0);
        x(&mut psi, 1);
        z(&mut psi, 2);
        rx(&mut psi, 3, 1.1);
        ry(&mut psi, 0, 0.4);
        rz(&mut psi, 1, 2.2);
        cnot(&mut psi, 0, 3);
        rzz(&mut psi, 1, 2, 0.9);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotations_compose_additively() {
        let mut a = StateVector::uniform_superposition(2);
        let mut b = a.clone();
        rx(&mut a, 0, 0.3);
        rx(&mut a, 0, 0.5);
        rx(&mut b, 0, 0.8);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gate_rejects_bad_qubit() {
        let mut psi = StateVector::zero_state(2);
        h(&mut psi, 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn cnot_rejects_same_qubit() {
        let mut psi = StateVector::zero_state(2);
        cnot(&mut psi, 1, 1);
    }
}
