//! Dataset persistence.
//!
//! §3.1: "Each graph is stored in a text file... The final output is an
//! organized list comprising the graph structures along with important
//! metadata like approximate ratio and values for the best cuts." This
//! module mirrors that layout: one `graph_<i>.txt` per instance (the
//! [`qgraph::io`] format) plus a `labels.tsv` index holding the QAOA
//! metadata, so a labeled dataset survives between runs — full-scale
//! labeling is by far the most expensive pipeline stage.

use std::fs;
use std::io;
use std::path::Path;

use qaoa::Params;

use crate::dataset::{Dataset, LabeledGraph};

/// Name of the index file inside a dataset directory.
pub const INDEX_FILE: &str = "labels.tsv";

fn graph_file_name(index: usize) -> String {
    format!("graph_{index:05}.txt")
}

/// Writes a dataset into `dir` (created if missing): one graph text file
/// per entry plus a `labels.tsv` index.
///
/// # Errors
///
/// Propagates filesystem errors. Existing files are overwritten.
pub fn save_dataset<P: AsRef<Path>>(dataset: &Dataset, dir: P) -> io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut index = String::from("file\tdepth\tgammas\tbetas\texpectation\toptimal\tapprox_ratio\n");
    for (i, entry) in dataset.entries.iter().enumerate() {
        let name = graph_file_name(i);
        qgraph::io::write_graph(&entry.graph, dir.join(&name))?;
        let join = |xs: &[f64]| {
            xs.iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        index.push_str(&format!(
            "{name}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            entry.params.depth(),
            join(entry.params.gammas()),
            join(entry.params.betas()),
            entry.expectation,
            entry.optimal,
            entry.approx_ratio,
        ));
    }
    fs::write(dir.join(INDEX_FILE), index)
}

fn invalid<E: std::fmt::Display>(line: usize, message: E) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("labels.tsv line {line}: {message}"),
    )
}

/// Loads a dataset previously written by [`save_dataset`].
///
/// # Errors
///
/// Returns filesystem errors as-is and malformed index/graph files as
/// [`io::ErrorKind::InvalidData`].
pub fn load_dataset<P: AsRef<Path>>(dir: P) -> io::Result<Dataset> {
    let dir = dir.as_ref();
    let index = fs::read_to_string(dir.join(INDEX_FILE))?;
    let mut entries = Vec::new();
    for (i, line) in index.lines().enumerate().skip(1) {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(invalid(lineno, format!("expected 7 fields, got {}", fields.len())));
        }
        let graph = qgraph::io::read_graph(dir.join(fields[0]))?;
        let parse_f64 = |s: &str| s.parse::<f64>().map_err(|e| invalid(lineno, e));
        let parse_vec = |s: &str| -> io::Result<Vec<f64>> {
            s.split(',').map(parse_f64).collect()
        };
        let depth: usize = fields[1].parse().map_err(|e| invalid(lineno, e))?;
        let gammas = parse_vec(fields[2])?;
        let betas = parse_vec(fields[3])?;
        if gammas.len() != depth || betas.len() != depth {
            return Err(invalid(lineno, "angle count does not match depth"));
        }
        entries.push(LabeledGraph {
            graph,
            params: Params::new(gammas, betas),
            expectation: parse_f64(fields[4])?,
            optimal: parse_f64(fields[5])?,
            approx_ratio: parse_f64(fields[6])?,
        });
    }
    Ok(Dataset { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabelConfig;
    use qgraph::generate::DatasetSpec;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qaoa_gnn_store_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dataset = Dataset::generate(
            &DatasetSpec::with_count(6),
            &LabelConfig::quick(30),
            17,
        )
        .unwrap();
        let dir = temp_dir("round_trip");
        save_dataset(&dataset, &dir).unwrap();
        let back = load_dataset(&dir).unwrap();
        assert_eq!(dataset, back);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_layout_matches_paper_description() {
        let dataset = Dataset::generate(
            &DatasetSpec::with_count(3),
            &LabelConfig::quick(20),
            18,
        )
        .unwrap();
        let dir = temp_dir("layout");
        save_dataset(&dataset, &dir).unwrap();
        assert!(dir.join("graph_00000.txt").is_file());
        assert!(dir.join("graph_00002.txt").is_file());
        assert!(dir.join(INDEX_FILE).is_file());
        let index = fs::read_to_string(dir.join(INDEX_FILE)).unwrap();
        assert!(index.starts_with("file\tdepth"));
        assert_eq!(index.lines().count(), 4); // header + 3 rows
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_io_error() {
        assert!(load_dataset("/definitely/not/a/dataset").is_err());
    }

    #[test]
    fn load_rejects_malformed_index() {
        let dir = temp_dir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(INDEX_FILE), "file\tdepth\nonly_two\tfields\n").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_depth_mismatch() {
        let dir = temp_dir("depth_mismatch");
        fs::create_dir_all(&dir).unwrap();
        let g = qgraph::Graph::cycle(3).unwrap();
        qgraph::io::write_graph(&g, dir.join("graph_00000.txt")).unwrap();
        fs::write(
            dir.join(INDEX_FILE),
            "file\tdepth\tgammas\tbetas\texpectation\toptimal\tapprox_ratio\n\
             graph_00000.txt\t2\t0.5\t0.2\t1.0\t2.0\t0.5\n",
        )
        .unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert!(err.to_string().contains("does not match depth"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
