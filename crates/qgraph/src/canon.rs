//! Canonical-form hashing and isomorphism testing.
//!
//! The serving cache and the labeling deduper both need to answer one
//! question cheaply: *is this graph structurally the same as one we have
//! already seen?* Two tools cooperate:
//!
//! 1. [`wl_hash`] — a deterministic 64-bit hash built from Weisfeiler–Leman
//!    (WL) color refinement. It is **permutation-invariant**: relabeling the
//!    nodes of a graph never changes the hash, so isomorphic graphs always
//!    land in the same bucket.
//! 2. [`are_isomorphic`] — an exact isomorphism check used as the collision
//!    fallback on every bucket hit. WL-1 refinement cannot separate certain
//!    non-isomorphic pairs (the classic example at this scale: the 6-cycle
//!    vs. two disjoint triangles — both 2-regular on 6 nodes), so a hash
//!    match alone is never trusted to serve cached parameters.
//!
//! ## Collision posture
//!
//! * Isomorphic graphs **always** collide (by construction — the hash is a
//!   graph invariant). That is the cache's hit path.
//! * Non-isomorphic graphs collide only when (a) WL-1 refinement cannot
//!   distinguish them *and* (b) the 64-bit FNV-1a folds of `n`, `m`, the
//!   edge-weight multiset and the refined color multiset agree. For the
//!   paper's envelope (n ≤ 15) WL-equivalent non-isomorphic pairs are rare
//!   and random 64-bit collisions are negligible; both are rendered harmless
//!   by the exact [`are_isomorphic`] comparison every consumer performs
//!   before treating a bucket hit as a structural match.
//! * [`are_isomorphic`] is **one-sided conservative**: it may return `false`
//!   for a genuinely isomorphic pair if its backtracking budget is exhausted
//!   (astronomically unlikely at n ≤ 15 — color classes prune the search),
//!   but it never returns `true` for a non-isomorphic pair. A false negative
//!   costs a cache miss or a duplicate simulation, never a wrong answer.

use crate::Graph;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Assignment budget for the backtracking isomorphism search. Exhausting it
/// yields a conservative `false` (treated as "not proven isomorphic").
const ISO_STEP_BUDGET: u64 = 1_000_000;

/// Node-count guard for the O(n²) scratch the matcher allocates. Graphs
/// larger than this are compared by exact equality only (the serving
/// envelope caps n at 15, so this is purely defensive).
const ISO_MAX_NODES: usize = 1024;

#[inline]
fn fnv_byte(mut h: u64, b: u8) -> u64 {
    h ^= b as u64;
    h = h.wrapping_mul(FNV_PRIME);
    h
}

#[inline]
fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = fnv_byte(h, b);
    }
    h
}

/// One WL refinement pass: each node's new color is a hash of its old color
/// and the **sorted** multiset of `(neighbor color, edge-weight bits)` pairs.
/// Sorting makes the pass independent of adjacency-list insertion order, and
/// therefore of node labeling.
fn wl_round(graph: &Graph, colors: &[u64]) -> Vec<u64> {
    let mut next = Vec::with_capacity(graph.n());
    let mut signature: Vec<(u64, u64)> = Vec::new();
    for v in 0..graph.n() {
        signature.clear();
        for &(u, w) in graph.neighbors(v) {
            signature.push((colors[u], w.to_bits()));
        }
        signature.sort_unstable();
        let mut h = fnv_u64(FNV_OFFSET, colors[v]);
        for &(c, wb) in &signature {
            h = fnv_u64(h, c);
            h = fnv_u64(h, wb);
        }
        next.push(h);
    }
    next
}

fn distinct_count(colors: &[u64]) -> usize {
    let mut sorted: Vec<u64> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Runs WL color refinement to a stable partition and returns the final
/// per-node colors.
///
/// The initial color of a node folds its degree with the sorted multiset of
/// its incident edge-weight bits — the same degree signal the paper's GNN
/// features start from. Refinement stops as soon as a pass fails to increase
/// the number of distinct colors (the partition has stabilized), and is
/// capped at `n` passes; both stopping rules are themselves
/// permutation-invariant, so the returned color *multiset* is a graph
/// invariant.
pub fn wl_colors(graph: &Graph) -> Vec<u64> {
    let mut colors = Vec::with_capacity(graph.n());
    let mut weight_bits: Vec<u64> = Vec::new();
    for v in 0..graph.n() {
        weight_bits.clear();
        weight_bits.extend(graph.neighbors(v).iter().map(|&(_, w)| w.to_bits()));
        weight_bits.sort_unstable();
        let mut h = fnv_u64(FNV_OFFSET, graph.degree(v) as u64);
        for &wb in &weight_bits {
            h = fnv_u64(h, wb);
        }
        colors.push(h);
    }
    let mut classes = distinct_count(&colors);
    for _ in 0..graph.n() {
        let next = wl_round(graph, &colors);
        let next_classes = distinct_count(&next);
        colors = next;
        if next_classes <= classes {
            break;
        }
        classes = next_classes;
    }
    colors
}

/// Deterministic, permutation-invariant 64-bit canonical hash of a graph.
///
/// Folds `n`, `m` and the sorted multiset of refined WL colors into FNV-1a.
/// Isomorphic graphs always produce the same hash; see the module docs for
/// the collision posture on non-isomorphic graphs.
///
/// ```
/// use qgraph::{canon, Graph};
///
/// let g = Graph::path(5).unwrap();
/// let h = g.relabel(&[4, 2, 0, 1, 3]);
/// assert_eq!(canon::wl_hash(&g), canon::wl_hash(&h));
/// assert_ne!(canon::wl_hash(&g), canon::wl_hash(&Graph::star(5).unwrap()));
/// ```
pub fn wl_hash(graph: &Graph) -> u64 {
    let mut colors = wl_colors(graph);
    colors.sort_unstable();
    let mut h = fnv_u64(FNV_OFFSET, graph.n() as u64);
    h = fnv_u64(h, graph.m() as u64);
    for &c in &colors {
        h = fnv_u64(h, c);
    }
    h
}

/// Weight-bits adjacency lookup used by the matcher: `adj[u][v]` is
/// `Some(weight.to_bits())` when `(u, v)` is an edge.
fn bit_matrix(graph: &Graph) -> Vec<Vec<Option<u64>>> {
    let n = graph.n();
    let mut adj = vec![vec![None; n]; n];
    for e in graph.edges() {
        let bits = Some(e.weight.to_bits());
        adj[e.u][e.v] = bits;
        adj[e.v][e.u] = bits;
    }
    adj
}

/// Exact isomorphism test (weights must match bit-for-bit).
///
/// Cheap invariants (`n`, `m`, the WL color multiset) reject most
/// non-isomorphic pairs outright; survivors go through color-class-pruned
/// backtracking. The search is budgeted: if it exceeds its step budget it
/// returns `false` — a conservative answer that can only cause a cache miss
/// or a duplicate simulation, never a wrong match (see module docs).
///
/// ```
/// use qgraph::{canon, Graph};
///
/// let c6 = Graph::cycle(6).unwrap();
/// let triangles =
///     Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
/// // WL-1 cannot separate these two 2-regular graphs...
/// assert_eq!(canon::wl_hash(&c6), canon::wl_hash(&triangles));
/// // ...but the exact matcher can.
/// assert!(!canon::are_isomorphic(&c6, &triangles));
/// ```
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.n() != b.n() || a.m() != b.m() {
        return false;
    }
    if a.n() > ISO_MAX_NODES {
        return a == b;
    }
    let colors_a = wl_colors(a);
    let colors_b = wl_colors(b);
    let mut sorted_a = colors_a.clone();
    let mut sorted_b = colors_b.clone();
    sorted_a.sort_unstable();
    sorted_b.sort_unstable();
    if sorted_a != sorted_b {
        return false;
    }

    let n = a.n();
    // Class size per color (shared between both graphs after the multiset
    // check above): smaller classes are more constrained, so matching them
    // first prunes the search hardest.
    let class_size = |c: u64| sorted_a.iter().filter(|&&x| x == c).count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (class_size(colors_a[v]), colors_a[v], v));

    let mut search = Search {
        order: &order,
        colors_a: &colors_a,
        colors_b: &colors_b,
        adj_a: &bit_matrix(a),
        adj_b: &bit_matrix(b),
        mapping: vec![None; n], // a-node -> b-node
        used: vec![false; n],
        steps: 0,
    };
    search.backtrack(0)
}

/// State of one color-class-pruned backtracking search.
struct Search<'a> {
    order: &'a [usize],
    colors_a: &'a [u64],
    colors_b: &'a [u64],
    adj_a: &'a [Vec<Option<u64>>],
    adj_b: &'a [Vec<Option<u64>>],
    mapping: Vec<Option<usize>>,
    used: Vec<bool>,
    steps: u64,
}

impl Search<'_> {
    fn backtrack(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        let v = self.order[depth];
        for u in 0..self.colors_b.len() {
            if self.used[u] || self.colors_b[u] != self.colors_a[v] {
                continue;
            }
            self.steps += 1;
            if self.steps > ISO_STEP_BUDGET {
                return false;
            }
            // Consistency with every already-mapped node: edge presence and
            // weight bits must agree in both directions.
            let consistent = self.order[..depth].iter().all(|&w| {
                let mw = self.mapping[w].expect("mapped prefix");
                self.adj_a[v][w] == self.adj_b[u][mw]
            });
            if !consistent {
                continue;
            }
            self.mapping[v] = Some(u);
            self.used[u] = true;
            if self.backtrack(depth + 1) {
                return true;
            }
            self.mapping[v] = None;
            self.used[u] = false;
            if self.steps > ISO_STEP_BUDGET {
                return false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm_of(n: usize, seed: u64) -> Vec<usize> {
        // Tiny deterministic Fisher–Yates on a splitmix-style stream.
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    #[test]
    fn hash_is_permutation_invariant() {
        let graphs = [
            Graph::path(7).unwrap(),
            Graph::cycle(8).unwrap(),
            Graph::star(9).unwrap(),
            Graph::complete(6).unwrap(),
            Graph::grid(3, 4).unwrap(),
            Graph::complete_bipartite(3, 4).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let base = wl_hash(g);
            for s in 0..5u64 {
                let h = g.relabel(&perm_of(g.n(), s.wrapping_add(i as u64 * 97)));
                assert_eq!(base, wl_hash(&h), "graph #{i} perm seed {s}");
                assert!(are_isomorphic(g, &h), "graph #{i} perm seed {s}");
            }
        }
    }

    #[test]
    fn distinct_structures_hash_differently() {
        // Same n, same m: path vs. star on 5 nodes (4 edges each).
        let path = Graph::path(5).unwrap();
        let star = Graph::star(5).unwrap();
        assert_ne!(wl_hash(&path), wl_hash(&star));
        assert!(!are_isomorphic(&path, &star));
    }

    #[test]
    fn weights_participate_in_the_hash() {
        let light = Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let heavy = Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        assert_ne!(wl_hash(&light), wl_hash(&heavy));
        assert!(!are_isomorphic(&light, &heavy));
        // Moving the heavy edge elsewhere on the path is still isomorphic.
        let heavy_flipped = Graph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        assert_eq!(wl_hash(&heavy), wl_hash(&heavy_flipped));
        assert!(are_isomorphic(&heavy, &heavy_flipped));
    }

    #[test]
    fn wl_collision_pair_is_separated_by_exact_matcher() {
        // The canonical WL-1 failure case at this scale: C6 vs. 2×C3. Both
        // are 2-regular on 6 nodes with 6 unit edges, so refinement assigns
        // every node the same color and the hashes collide — which is
        // exactly why bucket hits must run the exact matcher.
        let c6 = Graph::cycle(6).unwrap();
        let tri2 =
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        assert_eq!(wl_hash(&c6), wl_hash(&tri2));
        assert!(!are_isomorphic(&c6, &tri2));
        assert!(are_isomorphic(&c6, &c6.relabel(&perm_of(6, 3))));
    }

    #[test]
    fn size_mismatches_reject_immediately() {
        let p3 = Graph::path(3).unwrap();
        let p4 = Graph::path(4).unwrap();
        assert!(!are_isomorphic(&p3, &p4));
        let c4 = Graph::cycle(4).unwrap();
        let sparse = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!are_isomorphic(&c4, &sparse));
    }

    #[test]
    fn dense_symmetric_graphs_match_within_budget() {
        // K_12 is the worst case for naive matching (12! mappings); the
        // search must still succeed because every candidate extends.
        let k = Graph::complete(12).unwrap();
        let shuffled = k.relabel(&perm_of(12, 7));
        assert!(are_isomorphic(&k, &shuffled));
        assert_eq!(wl_hash(&k), wl_hash(&shuffled));
    }

    #[test]
    fn edgeless_graphs_compare_by_node_count() {
        let a = Graph::empty(5).unwrap();
        let b = Graph::empty(5).unwrap();
        let c = Graph::empty(6).unwrap();
        assert_eq!(wl_hash(&a), wl_hash(&b));
        assert!(are_isomorphic(&a, &b));
        assert_ne!(wl_hash(&a), wl_hash(&c));
        assert!(!are_isomorphic(&a, &c));
    }
}
