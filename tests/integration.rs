//! Cross-crate integration tests: each test exercises at least two crates
//! through their public APIs.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::{GnnKind, GnnModel, ModelConfig};
use qaoa::optimize::{GridSearch, Maximizer, NelderMead};
use qaoa::{analytic, fixed_angle, MaxCutHamiltonian, Params, QaoaCircuit};
use qaoa_gnn::dataset::{label_graph, Dataset, LabelConfig};
use qaoa_gnn::sdp::{self, SdpConfig};
use qaoa_gnn::{fixed, pipeline};
use qgraph::generate::DatasetSpec;
use qgraph::{generate, maxcut, Graph};

/// The simulator and the closed-form p=1 expectation must agree on every
/// graph the dataset generator can produce.
#[test]
fn simulator_matches_analytic_on_dataset_graphs() {
    let mut rng = StdRng::seed_from_u64(201);
    let spec = DatasetSpec::with_count(25);
    let graphs = spec.generate(&mut rng).unwrap();
    for (i, g) in graphs.iter().enumerate() {
        if g.m() == 0 {
            continue;
        }
        let gamma = 0.1 + 0.13 * i as f64;
        let beta = 0.05 + 0.07 * i as f64;
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(g));
        let sim = circuit.expectation(&Params::new(vec![gamma], vec![beta]));
        let formula = analytic::graph_expectation(g, gamma, beta);
        assert!(
            (sim - formula).abs() < 1e-8,
            "graph {i} (n={}, m={}): sim {sim} vs analytic {formula}",
            g.n(),
            g.m()
        );
    }
}

/// Grid search over the p=1 landscape must dominate what random-init
/// Nelder–Mead finds, and both must stay below the classical optimum.
#[test]
fn optimizer_hierarchy_on_real_instances() {
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..5 {
        let g = generate::random_regular(8, 3, &mut rng).unwrap();
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let objective = |flat: &[f64]| {
            circuit.expectation(&Params::from_flat(flat).expect("p=1 layout"))
        };
        let grid = GridSearch { resolution: 48 }.maximize(objective, &[0.0, 0.0], &mut rng);
        let start = Params::random(1, &mut rng).to_flat();
        let nm = NelderMead::new(150).maximize(objective, &start, &mut rng);
        let optimal = circuit.hamiltonian().optimal_value();
        assert!(grid.best_value <= optimal + 1e-9);
        assert!(nm.best_value <= grid.best_value + 0.05, "NM should not beat a dense grid by much");
        assert!(grid.best_value > optimal * 0.5, "p=1 QAOA beats random guessing");
    }
}

/// Fixed angles from the analytic tree objective must transfer to actual
/// regular instances with near-grid-optimal quality (the conjecture).
#[test]
fn fixed_angles_transfer_to_instances() {
    let mut rng = StdRng::seed_from_u64(203);
    for degree in [3usize, 4, 5] {
        let g = generate::random_regular(10, degree, &mut rng).unwrap();
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let fa = fixed_angle::fixed_angles(degree);
        let fixed_ar = circuit.approximation_ratio(&fa.params);
        // Dense grid reference.
        let objective = |flat: &[f64]| {
            circuit.expectation(&Params::from_flat(flat).expect("p=1 layout"))
        };
        let grid = GridSearch { resolution: 48 }.maximize(objective, &[0.0, 0.0], &mut rng);
        let grid_ar = circuit
            .hamiltonian()
            .approximation_ratio(grid.best_value);
        assert!(
            fixed_ar > grid_ar - 0.06,
            "degree {degree}: fixed {fixed_ar} vs grid {grid_ar}"
        );
    }
}

/// Labels must be reproducible end-to-end and internally consistent with
/// the brute-force optimum from qgraph.
#[test]
fn labels_are_consistent_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(204);
    let g = generate::erdos_renyi(9, 0.4, &mut rng).unwrap();
    let label = label_graph(&g, &LabelConfig::quick(80), &mut rng);
    let brute = maxcut::brute_force(&g);
    assert_eq!(label.optimal, brute.value);
    assert!(label.expectation <= brute.value + 1e-9);
    // Re-evaluating the stored params reproduces the stored expectation.
    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
    let re_eval = circuit.expectation(&label.params);
    assert!((re_eval - label.expectation).abs() < 1e-9);
}

/// The data-quality passes compose: SDP then fixed-angle augmentation can
/// only improve mean label quality, and never touch the graph structures.
#[test]
fn quality_passes_compose() {
    let dataset = Dataset::generate(
        &DatasetSpec::with_count(30),
        &LabelConfig::quick(50),
        205,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(205);
    let before = dataset.mean_approx_ratio();
    let (pruned, stats) = sdp::prune(&dataset, &SdpConfig::paper_default(), &mut rng);
    assert_eq!(stats.input, 30);
    let (augmented, _) = fixed::augment(&pruned);
    assert!(augmented.mean_approx_ratio() >= before - 1e-9);
    for (a, p) in augmented.entries.iter().zip(&pruned.entries) {
        assert_eq!(a.graph, p.graph, "augmentation must not alter graphs");
        assert_eq!(a.optimal, p.optimal);
    }
}

/// A GNN trained on fixed-angle labels of regular graphs must recover the
/// degree → γ* relationship (γ* decreases with degree).
#[test]
fn gnn_learns_fixed_angle_structure() {
    let mut rng = StdRng::seed_from_u64(206);
    // Build a dataset labeled purely by fixed angles for degrees 3 and 8.
    let mut entries = Vec::new();
    for _ in 0..12 {
        for &d in &[3usize, 8] {
            let n = 12;
            let g = generate::random_regular(n, d, &mut rng).unwrap();
            let ham = MaxCutHamiltonian::new(&g);
            let circuit = QaoaCircuit::new(ham.clone());
            let fa = fixed_angle::fixed_angles(d);
            let expectation = circuit.expectation(&fa.params);
            entries.push(qaoa_gnn::LabeledGraph {
                graph: g,
                params: fa.params,
                expectation,
                optimal: ham.optimal_value(),
                approx_ratio: ham.approximation_ratio(expectation),
            });
        }
    }
    let dataset = Dataset { entries };
    let model_config = ModelConfig {
        dropout: 0.0,
        hidden_dim: 16,
        ..ModelConfig::default()
    };
    let model = GnnModel::new(GnnKind::Gin, model_config.clone(), &mut rng);
    let examples = pipeline::to_examples(&dataset, &model_config);
    gnn::train::train(
        &model,
        &examples,
        &gnn::train::TrainConfig::quick(40),
        &mut rng,
    );
    // Held-out graphs of each degree.
    let g3 = generate::random_regular(12, 3, &mut rng).unwrap();
    let g8 = generate::random_regular(12, 8, &mut rng).unwrap();
    let (gamma3, _) = model.predict(&g3);
    let (gamma8, _) = model.predict(&g8);
    let want3 = fixed_angle::fixed_angles(3).params.gammas()[0];
    let want8 = fixed_angle::fixed_angles(8).params.gammas()[0];
    assert!(want3 > want8);
    assert!(
        gamma3 > gamma8,
        "model should predict larger gamma for degree 3 ({gamma3} vs {gamma8})"
    );
}

/// Dataset text I/O from qgraph composes with the labeling pipeline:
/// write → read → relabel gives the same optimum.
#[test]
fn graph_files_round_trip_through_labeling() {
    let mut rng = StdRng::seed_from_u64(207);
    let g = generate::random_regular(8, 3, &mut rng).unwrap();
    let text = qgraph::io::graph_to_string(&g);
    let back = qgraph::io::graph_from_str(&text).unwrap();
    let a = label_graph(&g, &LabelConfig::quick(40), &mut StdRng::seed_from_u64(1));
    let b = label_graph(&back, &LabelConfig::quick(40), &mut StdRng::seed_from_u64(1));
    assert_eq!(a, b);
}

/// Weighted graphs flow through the QAOA stack (the §7 extension): the
/// simulator accepts them even though the analytic p=1 formula does not.
#[test]
fn weighted_graphs_supported_by_simulator_path() {
    let mut rng = StdRng::seed_from_u64(208);
    let base = generate::random_regular(8, 3, &mut rng).unwrap();
    let weighted = generate::randomize_weights(&base, 0.5, 2.0, &mut rng).unwrap();
    let label = label_graph(&weighted, &LabelConfig::quick(60), &mut rng);
    assert!(label.approx_ratio > 0.4);
    assert!(label.approx_ratio <= 1.0 + 1e-9);
    // The analytic fast path explicitly refuses weighted inputs.
    let result = std::panic::catch_unwind(|| {
        analytic::graph_expectation(&weighted, 0.3, 0.2)
    });
    assert!(result.is_err(), "analytic formula must reject weighted graphs");
}

/// Evaluation reports are structurally sound for a freshly initialized
/// (untrained) model — the baseline sanity the §4 comparison rests on.
#[test]
fn evaluation_report_structure() {
    let mut rng = StdRng::seed_from_u64(209);
    let model = GnnModel::new(GnnKind::Gat, ModelConfig::default(), &mut rng);
    let graphs: Vec<Graph> = (0..8)
        .map(|i| generate::random_regular(6 + (i % 4) * 2, 3, &mut rng).unwrap())
        .collect();
    let report = qaoa_gnn::eval::evaluate_model(
        &model,
        &graphs,
        &qaoa_gnn::eval::EvalConfig::default(),
        &mut rng,
    );
    assert_eq!(report.per_graph.len(), 8);
    assert!((0.0..=1.0).contains(&report.win_rate()));
    assert!(report.mean_improvement.abs() <= 100.0);
    let recomputed = qaoa_gnn::EvaluationReport::from_comparisons(report.per_graph.clone());
    assert!((recomputed.mean_improvement - report.mean_improvement).abs() < 1e-12);
}
