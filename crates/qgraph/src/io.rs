//! Graph text format.
//!
//! §3.1: "Each graph is stored in a text file, which is then inputted into
//! the QAOA algorithm." The format used here is a minimal edge-list file:
//!
//! ```text
//! # optional comments
//! n <node-count>
//! e <u> <v> [weight]
//! e <u> <v> [weight]
//! ```
//!
//! Weights default to `1.0` when omitted, so unweighted dataset files stay
//! terse. [`write_graph`]/[`read_graph`] round-trip exactly.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::{Graph, GraphError};

/// Serializes a graph to the text format.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), qgraph::GraphError> {
/// let g = qgraph::Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let text = qgraph::io::graph_to_string(&g);
/// let back = qgraph::io::graph_from_str(&text)?;
/// assert_eq!(g, back);
/// # Ok(())
/// # }
/// ```
pub fn graph_to_string(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", graph.n());
    for e in graph.edges() {
        if e.weight == 1.0 {
            let _ = writeln!(out, "e {} {}", e.u, e.v);
        } else {
            let _ = writeln!(out, "e {} {} {}", e.u, e.v, e.weight);
        }
    }
    out
}

/// Parses a graph from the text format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] with a 1-based line number on malformed
/// input, and the usual construction errors for invalid edges.
pub fn graph_from_str(text: &str) -> Result<Graph, GraphError> {
    let mut graph: Option<Graph> = None;
    let mut pending: Vec<(usize, usize, f64, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                let n: usize = parse_field(parts.next(), lineno, "node count")?;
                if graph.is_some() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: "duplicate 'n' line".into(),
                    });
                }
                graph = Some(Graph::empty(n)?);
            }
            Some("e") => {
                let u: usize = parse_field(parts.next(), lineno, "edge endpoint u")?;
                let v: usize = parse_field(parts.next(), lineno, "edge endpoint v")?;
                let w: f64 = match parts.next() {
                    Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                        line: lineno,
                        message: format!("invalid weight '{tok}'"),
                    })?,
                    None => 1.0,
                };
                pending.push((u, v, w, lineno));
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown record type '{other}'"),
                });
            }
            None => unreachable!("blank lines are skipped"),
        }
    }
    let mut graph = graph.ok_or(GraphError::Parse {
        line: 0,
        message: "missing 'n' line".into(),
    })?;
    for (u, v, w, _lineno) in pending {
        graph.add_edge(u, v, w)?;
    }
    Ok(graph)
}

fn parse_field<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} '{tok}'"),
    })
}

/// Writes a graph to `path` in the text format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_graph<P: AsRef<Path>>(graph: &Graph, path: P) -> io::Result<()> {
    fs::write(path, graph_to_string(graph))
}

/// Reads a graph from a text-format file.
///
/// # Errors
///
/// Returns an I/O error for filesystem failures; parse failures are wrapped
/// into [`io::ErrorKind::InvalidData`].
pub fn read_graph<P: AsRef<Path>>(path: P) -> io::Result<Graph> {
    let text = fs::read_to_string(path)?;
    graph_from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_unweighted() {
        let g = Graph::cycle(5).unwrap();
        let s = graph_to_string(&g);
        assert!(s.starts_with("n 5\n"));
        assert!(s.contains("e 0 1\n"));
        assert_eq!(graph_from_str(&s).unwrap(), g);
    }

    #[test]
    fn round_trip_weighted() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 1.0)]).unwrap();
        let s = graph_to_string(&g);
        assert!(s.contains("e 0 1 2.5"));
        assert!(s.contains("e 1 2\n")); // weight-1 edges stay terse
        assert_eq!(graph_from_str(&s).unwrap(), g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\nn 2\n# edge below\ne 0 1\n";
        let g = graph_from_str(text).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = graph_from_str("n 2\ne 0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = graph_from_str("x 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = graph_from_str("e 0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 0, .. }));
        let err = graph_from_str("n 2\nn 3\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = graph_from_str("n 2\ne 0 1 abc\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn structural_errors_propagate() {
        assert!(matches!(
            graph_from_str("n 2\ne 0 5\n"),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            graph_from_str("n 2\ne 0 0\n"),
            Err(GraphError::SelfLoop(0))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("qgraph_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = Graph::complete(4).unwrap();
        write_graph(&g, &path).unwrap();
        let back = read_graph(&path).unwrap();
        assert_eq!(g, back);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        assert!(read_graph("/nonexistent/definitely/missing.txt").is_err());
    }
}
