//! Diagonal observables and diagonal evolution.
//!
//! The Max-Cut cost Hamiltonian `C = Σ_{(u,v)∈E} w_uv (1 - Z_u Z_v)/2` is
//! diagonal in the computational basis, so QAOA's phase-separation layer
//! `e^{-iγC}` reduces to per-amplitude phase multiplication against a
//! precomputed table of cost values. [`DiagonalOperator`] stores that table
//! once per problem instance and amortizes it across all optimizer
//! iterations — the same trick fast QAOA simulators use.

use crate::exec::Executor;
use crate::{Complex, StateVector};

/// A real diagonal operator on `n` qubits, stored as one value per basis
/// state.
///
/// # Example
///
/// ```
/// use qsim::diagonal::DiagonalOperator;
/// use qsim::StateVector;
///
/// // A one-qubit "number" operator: value 0 on |0⟩, 1 on |1⟩.
/// let op = DiagonalOperator::new(vec![0.0, 1.0]);
/// let psi = StateVector::uniform_superposition(1);
/// assert!((op.expectation(&psi) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalOperator {
    values: Vec<f64>,
    num_qubits: usize,
}

impl DiagonalOperator {
    /// Creates a diagonal operator from per-basis-state values.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two `>= 2`.
    pub fn new(values: Vec<f64>) -> Self {
        let dim = values.len();
        assert!(
            dim >= 2 && dim.is_power_of_two(),
            "diagonal length must be a power of two >= 2, got {dim}"
        );
        DiagonalOperator {
            num_qubits: dim.trailing_zeros() as usize,
            values,
        }
    }

    /// Builds the operator by evaluating `f` on every basis state.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or exceeds [`crate::MAX_QUBITS`].
    pub fn from_fn<F: FnMut(u64) -> f64>(num_qubits: usize, mut f: F) -> Self {
        assert!(
            (1..=crate::MAX_QUBITS).contains(&num_qubits),
            "num_qubits must be in 1..={}, got {num_qubits}",
            crate::MAX_QUBITS
        );
        let dim = 1usize << num_qubits;
        DiagonalOperator::new((0..dim as u64).map(&mut f).collect())
    }

    /// Number of qubits the operator acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The per-basis-state values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Largest diagonal value (the classical optimum for a cost function).
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest diagonal value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Basis state achieving [`Self::max_value`] (lowest index on ties).
    pub fn argmax(&self) -> u64 {
        let mut best = 0usize;
        for (i, &v) in self.values.iter().enumerate() {
            if v > self.values[best] {
                best = i;
            }
        }
        best as u64
    }

    /// Applies the evolution `e^{-iθ D}` to the state in place.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn apply_phase(&self, psi: &mut StateVector, theta: f64) {
        assert_eq!(
            psi.num_qubits(),
            self.num_qubits,
            "operator and state qubit counts must match"
        );
        let (re, im) = psi.re_im_mut();
        for i in 0..re.len() {
            let a = Complex::new(re[i], im[i]) * Complex::cis(-theta * self.values[i]);
            re[i] = a.re;
            im[i] = a.im;
        }
    }

    /// One fused QAOA layer: [`Self::apply_phase`] with angle `theta`
    /// followed by an `RX(rx_theta)` mixer on every qubit, executed by the
    /// fused kernel [`crate::fused::phase_rx_all`] in `⌈n/2⌉` amplitude
    /// sweeps instead of `n + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn apply_phase_rx_all(&self, psi: &mut StateVector, theta: f64, rx_theta: f64) {
        assert_eq!(
            psi.num_qubits(),
            self.num_qubits,
            "operator and state qubit counts must match"
        );
        crate::fused::phase_rx_all(psi, &self.values, theta, rx_theta);
    }

    /// [`Self::apply_phase_rx_all`] on an execution policy: above the
    /// policy's crossover each sweep is chunked onto the worker pool (see
    /// [`crate::fused::phase_rx_all_exec`]); below it, or on
    /// [`Executor::serial`], this is the bit-identical serial path.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn apply_phase_rx_all_exec(
        &self,
        psi: &mut StateVector,
        theta: f64,
        rx_theta: f64,
        exec: &Executor,
    ) {
        assert_eq!(
            psi.num_qubits(),
            self.num_qubits,
            "operator and state qubit counts must match"
        );
        crate::fused::phase_rx_all_exec(psi, &self.values, theta, rx_theta, exec);
    }

    /// Expectation `⟨ψ|D|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn expectation(&self, psi: &StateVector) -> f64 {
        assert_eq!(
            psi.num_qubits(),
            self.num_qubits,
            "operator and state qubit counts must match"
        );
        psi.expectation_diagonal(&self.values)
    }

    /// [`Self::expectation`] on an execution policy (see
    /// [`StateVector::expectation_diagonal_exec`] for the determinism
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn expectation_exec(&self, psi: &StateVector, exec: &Executor) -> f64 {
        assert_eq!(
            psi.num_qubits(),
            self.num_qubits,
            "operator and state qubit counts must match"
        );
        psi.expectation_diagonal_exec(&self.values, exec)
    }

    /// Variance `⟨D²⟩ - ⟨D⟩²`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn variance(&self, psi: &StateVector) -> f64 {
        let mean = self.expectation(psi);
        let sq: f64 = psi
            .re()
            .iter()
            .zip(psi.im())
            .zip(&self.values)
            .map(|((&re, &im), &v)| (re * re + im * im) * v * v)
            .sum();
        (sq - mean * mean).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn from_fn_builds_expected_table() {
        // Hamming-weight operator on 3 qubits.
        let op = DiagonalOperator::from_fn(3, |z| z.count_ones() as f64);
        assert_eq!(op.num_qubits(), 3);
        assert_eq!(op.values()[0b101], 2.0);
        assert_eq!(op.max_value(), 3.0);
        assert_eq!(op.min_value(), 0.0);
        assert_eq!(op.argmax(), 0b111);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_length() {
        let _ = DiagonalOperator::new(vec![1.0; 6]);
    }

    #[test]
    fn expectation_on_basis_state_reads_table() {
        let op = DiagonalOperator::from_fn(2, |z| (z * z) as f64);
        let psi = StateVector::basis_state(2, 3);
        assert_eq!(op.expectation(&psi), 9.0);
        assert_eq!(op.variance(&psi), 0.0);
    }

    #[test]
    fn phase_preserves_probabilities() {
        let op = DiagonalOperator::from_fn(3, |z| z as f64);
        let mut psi = StateVector::uniform_superposition(3);
        let before = psi.probabilities();
        op.apply_phase(&mut psi, 0.37);
        let after = psi.probabilities();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-14);
        }
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_matches_rz_for_z_observable() {
        // D = Z_0 has values (+1, -1) depending on bit 0 (|0⟩ ↔ z=+1).
        // e^{-iθD} must equal RZ(2θ) on qubit 0.
        let op = DiagonalOperator::from_fn(1, |z| if z & 1 == 0 { 1.0 } else { -1.0 });
        let theta = 0.731;
        let mut a = StateVector::uniform_superposition(1);
        let mut b = a.clone();
        op.apply_phase(&mut a, theta);
        gates::rz(&mut b, 0, 2.0 * theta);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_composes_additively() {
        let op = DiagonalOperator::from_fn(2, |z| z as f64 * 0.5);
        let mut a = StateVector::uniform_superposition(2);
        let mut b = a.clone();
        op.apply_phase(&mut a, 0.2);
        op.apply_phase(&mut a, 0.3);
        op.apply_phase(&mut b, 0.5);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_commutes_with_other_diagonal_gates() {
        let op = DiagonalOperator::from_fn(2, |z| z.count_ones() as f64);
        let mut a = StateVector::uniform_superposition(2);
        gates::rx(&mut a, 0, 0.4); // create richer amplitudes
        let mut b = a.clone();
        op.apply_phase(&mut a, 0.9);
        gates::rzz(&mut a, 0, 1, 0.33);
        gates::rzz(&mut b, 0, 1, 0.33);
        op.apply_phase(&mut b, 0.9);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_layer_matches_phase_then_mixer() {
        let op = DiagonalOperator::from_fn(4, |z| z.count_ones() as f64);
        let mut fused = StateVector::uniform_superposition(4);
        gates::ry(&mut fused, 1, 0.6); // asymmetrize
        let mut unfused = fused.clone();
        op.apply_phase_rx_all(&mut fused, 0.53, 0.71);
        op.apply_phase(&mut unfused, 0.53);
        gates::rx_all(&mut unfused, 0.71);
        assert!((fused.fidelity(&unfused) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "qubit counts must match")]
    fn fused_layer_rejects_mismatched_state() {
        let op = DiagonalOperator::from_fn(2, |z| z as f64);
        let mut psi = StateVector::uniform_superposition(3);
        op.apply_phase_rx_all(&mut psi, 0.1, 0.2);
    }

    #[test]
    fn variance_of_uniform_state() {
        // Single qubit, D = diag(0, 1): mean 1/2, variance 1/4.
        let op = DiagonalOperator::new(vec![0.0, 1.0]);
        let psi = StateVector::uniform_superposition(1);
        assert!((op.variance(&psi) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "qubit counts must match")]
    fn mismatched_qubits_rejected() {
        let op = DiagonalOperator::from_fn(2, |z| z as f64);
        let psi = StateVector::uniform_superposition(3);
        let _ = op.expectation(&psi);
    }
}
