//! Concrete generators: the workspace-standard [`StdRng`] and the
//! [`mock::StepRng`] test double.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step: the seeding PRNG (and the stream mixer for substreams).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace-standard generator: xoshiro256** (Blackman & Vigna, 2018),
/// seeded through SplitMix64.
///
/// Fast (4 words of state, a handful of arithmetic ops per draw), equi-
/// distributed in 4 dimensions, and with a 2^256 − 1 period. The output
/// stream for a given seed is a compatibility promise: regression tests may
/// hard-code values drawn from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator from four raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all words are zero (the one forbidden xoshiro state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256** state must be nonzero");
        StdRng { s }
    }

    /// The four raw state words. Feeding them back through
    /// [`Self::from_state`] reproduces this generator exactly — the pair is
    /// the save/restore protocol for mid-stream checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// A generator for substream `stream` of `seed`: deterministic in both
    /// arguments, and decorrelated across streams — worker `i` of a
    /// parallel loop can take `StdRng::substream(seed, i as u64)`.
    pub fn substream(seed: u64, stream: u64) -> Self {
        let mut state = seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        if s.iter().all(|&w| w == 0) {
            s[0] = 1;
        }
        StdRng { s }
    }

    /// Splits off an independent child generator, advancing `self`.
    pub fn split(&mut self) -> Self {
        let seed = self.next_u64();
        StdRng::seed_from_u64(seed)
    }

    /// Advances the state by 2^128 steps in O(1): calling `jump` k times
    /// yields 2^128 non-overlapping substreams of length 2^128 each.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut t = [0u64; 4];
        for word in JUMP {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    for (ti, si) in t.iter_mut().zip(&self.s) {
                        *ti ^= si;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = t;
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::substream(seed, 0)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Mock generators for tests.
pub mod mock {
    use crate::RngCore;

    /// An arithmetic-progression "generator": yields `initial`,
    /// `initial + increment`, `initial + 2·increment`, … Useful to pin a
    /// code path's RNG consumption in tests, or as a do-nothing generator
    /// where an API demands one but never draws.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// A generator yielding `initial`, then adding `increment` per draw.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.value;
            self.value = self.value.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn reference_stream_is_stable() {
        // Compatibility anchor: if this changes, every seeded artifact in
        // the repo silently changes with it.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(first.len(), 4);
        let mut again = StdRng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        // Distinct from the seed=1 stream.
        let mut other = StdRng::seed_from_u64(1);
        assert_ne!(first[0], other.next_u64());
    }

    #[test]
    fn substreams_are_decorrelated() {
        let mut a = StdRng::substream(99, 0);
        let mut b = StdRng::substream(99, 1);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn jump_diverges_from_parent() {
        let mut a = StdRng::seed_from_u64(4);
        let mut b = a.clone();
        b.jump();
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn jump_streams_mutually_distinct() {
        let base = StdRng::seed_from_u64(5);
        let mut s0 = base.clone();
        let mut s1 = base.clone();
        s1.jump();
        let mut s2 = s1.clone();
        s2.jump();
        let a = s0.next_u64();
        let b = s1.next_u64();
        let c = s2.next_u64();
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn split_children_differ() {
        let mut parent = StdRng::seed_from_u64(6);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn step_rng_walks_arithmetically() {
        let mut rng = mock::StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 16);
    }

    #[test]
    fn step_rng_zero_draws_tiny_floats() {
        // StepRng::new(0, 1) must keep gen::<f64>() pinned at ~0 for a
        // while — code paths use it as a "never really random" stand-in.
        let mut rng = mock::StepRng::new(0, 1);
        for _ in 0..100 {
            assert!(rng.gen::<f64>() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            let _ = rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        let tail_a: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let tail_b: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail_a, tail_b);
    }
}
