use std::error::Error;
use std::fmt;

/// Errors produced when constructing or parsing graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge connected a node to itself; simple graphs forbid this.
    SelfLoop(usize),
    /// The same unordered pair appeared twice in the edge list.
    DuplicateEdge(usize, usize),
    /// A graph with zero nodes was requested where at least one is required.
    EmptyGraph,
    /// A d-regular graph on n nodes requires `d < n` and `n * d` even.
    InvalidRegular {
        /// Requested number of nodes.
        n: usize,
        /// Requested degree.
        degree: usize,
    },
    /// An edge probability outside `[0, 1]` was supplied.
    InvalidProbability(f64),
    /// A non-finite edge weight was supplied.
    InvalidWeight(f64),
    /// A dimension argument was invalid for the requested topology
    /// (for example a grid with a zero side).
    InvalidDimension(String),
    /// A graph file or dataset record failed to parse.
    Parse {
        /// 1-based line number of the failure, when known.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::EmptyGraph => write!(f, "graph must have at least one node"),
            GraphError::InvalidRegular { n, degree } => write!(
                f,
                "no simple {degree}-regular graph on {n} nodes (need degree < n and n*degree even)"
            ),
            GraphError::InvalidProbability(p) => {
                write!(f, "edge probability {p} not in [0, 1]")
            }
            GraphError::InvalidWeight(w) => write!(f, "edge weight {w} is not finite"),
            GraphError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::SelfLoop(3);
        assert_eq!(e.to_string(), "self loop at node 3");
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("node 9"));
        let e = GraphError::InvalidRegular { n: 5, degree: 3 };
        assert!(e.to_string().contains("5 nodes"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
