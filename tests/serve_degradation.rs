//! The failpoint × degradation-rung matrix: every named failpoint in
//! `qaoa_gnn::faults` is armed here and the serving layer must land on the
//! documented outcome — the next rung of the ladder or a typed error,
//! never a panic, never a silent fallback.
//!
//! | failpoint      | injection | expected outcome                          |
//! |----------------|-----------|-------------------------------------------|
//! | `artifact_load`| err       | `GuardedPredictor::load` → `ArtifactError::Io` |
//! | `weight_build` | err/panic | GNN rung disabled; serves on fixed angles |
//! | `forward`      | nan/panic | GNN rung skipped per-request; fixed angles |
//! | `sim_eval`     | nan ×1    | GNN verification fails; fixed angles serve |
//! | `sim_eval`     | nan ×2    | both verified rungs fail; fallback serves |
//! | `journal_io`   | err       | `LabelJournal::append` → typed `io::Error` |
//! | `cache_lookup` | panic/err | cache lookup degrades to a GNN-rung miss  |
//!
//! Plus the batch-isolation contract (one poisoned request cannot take
//! down its batch) and the disarmed-faults bit-identity acceptance (a
//! guarded prediction on a real trained artifact equals the raw
//! `build_model().predict()` path bit-for-bit).

// The legacy predict/predict_text/serve_batch wrappers are exercised here
// on purpose: this suite pins their behavior, and tests/serve_loop.rs
// proves them bit-identical to the typed `handle` path.
#![allow(deprecated)]

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::train::{TrainConfig, TrainHistory};
use gnn::{GnnKind, GnnModel};
use qaoa_gnn::dataset::{LabelConfig, LabelReport};
use qaoa_gnn::faults::{self, FaultAction};
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::store::LabelJournal;
use qaoa_gnn::{
    ArtifactError, GuardedPredictor, RequestError, RunArtifact, Rung, ServeConfig, SkipReason,
    TrainingEnvelope,
};
use qgraph::generate::DatasetSpec;
use qgraph::Graph;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("qaoa_gnn_serve_tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A cheap untrained artifact with a wide envelope: every test graph here
/// is in-envelope, so degradation is attributable to the injected fault.
fn tiny_artifact() -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(7001);
    let config = gnn::ModelConfig {
        hidden_dim: 4,
        ..gnn::ModelConfig::default()
    };
    let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
    RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: 0,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    }
}

fn predictor() -> GuardedPredictor {
    GuardedPredictor::new(tiny_artifact(), ServeConfig::default())
}

#[test]
fn artifact_load_fault_is_a_typed_error() {
    let dir = temp_dir("artifact_load_fault");
    let path = dir.join("run.json");
    tiny_artifact().save(&path).unwrap();
    {
        let _fault = faults::armed(faults::ARTIFACT_LOAD, FaultAction::Error, 1);
        match GuardedPredictor::load(&path, ServeConfig::default()) {
            Err(ArtifactError::Io(e)) => {
                assert!(e.to_string().contains("fault injected: artifact_load"));
            }
            other => panic!("expected injected Io error, got {:?}", other.map(|_| ())),
        }
    }
    // Disarmed: the same file loads and serves.
    let served = GuardedPredictor::load(&path, ServeConfig::default()).unwrap();
    assert!(served.model_available());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn weight_build_error_disables_gnn_rung_not_the_predictor() {
    let _fault = faults::armed(faults::WEIGHT_BUILD, FaultAction::Error, 1);
    let served = predictor();
    assert!(!served.model_available());
    let outcome = served.predict(&Graph::cycle(8).unwrap()).unwrap();
    assert_eq!(outcome.rung, Rung::FixedAngle);
    assert!(matches!(
        outcome.skips[0].reason,
        SkipReason::ModelUnavailable(_)
    ));
    // Rung 2 really is the fixed-angle path: cycle(8) is 2-regular.
    let fa = qaoa::fixed_angle::fixed_angles(2);
    assert_eq!(outcome.params, fa.params);
    assert!(outcome.verified_score.is_some());
}

#[test]
fn weight_build_panic_is_contained_at_construction() {
    let _fault = faults::armed(faults::WEIGHT_BUILD, FaultAction::Panic, 1);
    let served = predictor(); // must not unwind out of new()
    assert!(!served.model_available());
    let outcome = served.predict(&Graph::cycle(6).unwrap()).unwrap();
    assert_eq!(outcome.rung, Rung::FixedAngle);
    match &outcome.skips[0].reason {
        SkipReason::ModelUnavailable(msg) => assert!(msg.contains("panicked")),
        other => panic!("expected ModelUnavailable, got {other:?}"),
    }
}

#[test]
fn forward_nan_degrades_to_fixed_angles() {
    let served = predictor();
    let _fault = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
    let outcome = served.predict(&Graph::cycle(8).unwrap()).unwrap();
    assert_eq!(outcome.rung, Rung::FixedAngle);
    assert!(matches!(
        outcome.skips[0].reason,
        SkipReason::NonFinite { .. }
    ));
    let (gamma, beta) = outcome.angles();
    assert!(gamma.is_finite() && beta.is_finite());
}

#[test]
fn forward_panic_is_contained_and_degrades() {
    let served = predictor();
    let _fault = faults::armed(faults::FORWARD, FaultAction::Panic, 1);
    let outcome = served.predict(&Graph::cycle(8).unwrap()).unwrap();
    assert_eq!(outcome.rung, Rung::FixedAngle);
    assert_eq!(outcome.skips[0].reason, SkipReason::Panicked);
    drop(_fault);
    // The contained panic left the model usable: the next request is clean.
    let clean = served.predict(&Graph::cycle(8).unwrap()).unwrap();
    assert!(clean.is_clean());
}

#[test]
fn sim_eval_nan_fails_gnn_verification_then_fixed_angles_serve() {
    let served = predictor();
    let _fault = faults::armed(faults::SIM_EVAL, FaultAction::Nan, 1);
    let outcome = served.predict(&Graph::cycle(8).unwrap()).unwrap();
    assert_eq!(outcome.rung, Rung::FixedAngle);
    assert_eq!(outcome.skips[0].reason, SkipReason::VerificationFailed);
    // The budget was spent on the GNN rung; fixed angles verified for real.
    assert!(outcome.verified_score.is_some());
    assert!(outcome.verified_score.unwrap().is_finite());
}

#[test]
fn sim_eval_nan_twice_exhausts_verified_rungs_to_fallback() {
    let served = predictor();
    let _fault = faults::armed(faults::SIM_EVAL, FaultAction::Nan, 2);
    let outcome = served.predict(&Graph::cycle(8).unwrap()).unwrap();
    assert_eq!(outcome.rung, Rung::Fallback);
    assert_eq!(outcome.skips.len(), 2);
    assert!(outcome
        .skips
        .iter()
        .all(|s| s.reason == SkipReason::VerificationFailed));
    // The fallback served the envelope's mean canonical label.
    assert_eq!(outcome.angles(), (1.0, 0.5));
    assert!(outcome.verified_score.is_none());
}

#[test]
fn sim_eval_panic_is_contained_and_degrades() {
    let served = predictor();
    let _fault = faults::armed(faults::SIM_EVAL, FaultAction::Panic, 1);
    let outcome = served.predict(&Graph::cycle(8).unwrap()).unwrap();
    assert_eq!(outcome.rung, Rung::FixedAngle);
    assert_eq!(outcome.skips[0].reason, SkipReason::Panicked);
}

#[test]
fn journal_io_fault_is_a_typed_append_error() {
    let dir = temp_dir("journal_io_fault");
    let mut rng = StdRng::seed_from_u64(7002);
    let graphs: Vec<Graph> = (0..3)
        .map(|_| qgraph::generate::erdos_renyi(5, 0.6, &mut rng).unwrap())
        .collect();
    let config = LabelConfig::quick(20);
    let (mut journal, done) = LabelJournal::open(&dir, &graphs, &config, 90).unwrap();
    assert!(done.is_empty());
    let entry = qaoa_gnn::dataset::label_graph(&graphs[0], &config, &mut rng);
    {
        let _fault = faults::armed(faults::JOURNAL_IO, FaultAction::Error, 1);
        let err = journal.append(0, &entry).unwrap_err();
        assert!(err.to_string().contains("fault injected: journal_io"));
    }
    // Disarmed: the same append succeeds and the record is durable.
    journal.append(0, &entry).unwrap();
    let (_, replayed) = LabelJournal::open(&dir, &graphs, &config, 90).unwrap();
    assert_eq!(replayed.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cache_lookup_panic_degrades_to_a_gnn_rung_miss() {
    use qaoa_gnn::{CacheConfig, PredictionCache};
    use std::sync::Arc;

    let cache = Arc::new(PredictionCache::new(CacheConfig::default()));
    let served = GuardedPredictor::new(tiny_artifact(), ServeConfig::default())
        .with_cache(Arc::clone(&cache), 0);
    let graph = Graph::cycle(8).unwrap();

    // Warm the cache, then prove the warm path actually hits.
    let fresh = served.predict(&graph).unwrap();
    assert!(fresh.is_clean() && !fresh.cached);
    assert!(served.predict(&graph).unwrap().cached);

    for action in [FaultAction::Panic, FaultAction::Error] {
        let _fault = faults::armed(faults::CACHE_LOOKUP, action, 1);
        let outcome = served.predict(&graph).unwrap();
        // The broken lookup is a normal GNN-rung miss: full ladder, no
        // degradation, bits identical to the fresh prediction.
        assert!(outcome.is_clean(), "degraded: {}", outcome.summary());
        assert!(!outcome.cached, "a faulted lookup must not claim a hit");
        assert_eq!(outcome, fresh);
    }
    let stats = cache.stats();
    assert_eq!(stats.lookup_faults, 2);
    assert_eq!(stats.hits, 1);

    // Disarmed, the cache serves hits again — bit-identical minus marker.
    let hit = served.predict(&graph).unwrap();
    assert!(hit.cached);
    let mut unmarked = hit;
    unmarked.cached = false;
    assert_eq!(unmarked, fresh);
}

#[test]
fn batch_isolates_a_poisoned_request() {
    let served = predictor();
    let graphs = vec![
        Graph::cycle(8).unwrap(),
        Graph::complete(5).unwrap(),
        Graph::star(6).unwrap(),
    ];
    let _fault = faults::armed(faults::FORWARD, FaultAction::Panic, 1);
    let outcomes = served.serve_batch(&graphs);
    assert_eq!(outcomes.len(), 3);
    // The single injected panic hits the first request and is contained
    // there; the rest of the batch serves cleanly on the GNN.
    let first = outcomes[0].as_ref().unwrap();
    assert_eq!(first.rung, Rung::FixedAngle);
    assert_eq!(first.skips[0].reason, SkipReason::Panicked);
    for outcome in &outcomes[1..] {
        assert!(outcome.as_ref().unwrap().is_clean());
    }
}

/// Acceptance: with every failpoint disarmed, the guarded path on a real
/// trained artifact is bit-identical to the raw
/// `RunArtifact::build_model().predict()` path, and the artifact written
/// by the pipeline carries a training envelope.
#[test]
fn disarmed_guarded_serving_is_bit_identical_to_raw_path() {
    let config = PipelineConfig::paper_scale()
        .with_dataset(DatasetSpec::with_count(30))
        .with_training(TrainConfig::quick(5))
        .with_test_size(6);
    let config = PipelineConfig {
        labeling: LabelConfig::quick(40),
        ..config
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pipeline = Pipeline::run(GnnKind::Gcn, &config, &mut rng);
    let artifact = pipeline.to_artifact(&config);
    let envelope = artifact.envelope.clone().expect("pipeline records an envelope");
    assert!(envelope.min_nodes <= envelope.max_nodes);

    let dir = temp_dir("bit_identity");
    let path = dir.join("run.json");
    artifact.save(&path).unwrap();
    let served = GuardedPredictor::load(&path, ServeConfig::default()).unwrap();
    let raw = RunArtifact::load(&path).unwrap().build_model().unwrap();

    // Every in-envelope training graph serves on the GNN rung with the
    // exact bits the raw path produces.
    let mut checked = 0;
    for entry in pipeline.train_dataset.entries.iter().take(5) {
        let (rg, rb) = raw.predict(&entry.graph);
        let outcome = served.predict(&entry.graph).unwrap();
        assert!(outcome.is_clean(), "unexpected degradation: {}", outcome.summary());
        let (sg, sb) = outcome.angles();
        assert_eq!(rg.to_bits(), sg.to_bits());
        assert_eq!(rb.to_bits(), sb.to_bits());
        checked += 1;
    }
    assert!(checked > 0);

    // An out-of-envelope request degrades with the violation recorded.
    let big = Graph::cycle(envelope.max_nodes + 3).unwrap();
    let outcome = served.predict(&big).unwrap();
    assert_ne!(outcome.rung, Rung::Gnn);
    assert!(matches!(
        outcome.skips[0].reason,
        SkipReason::OutOfEnvelope(_)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hostile_text_requests_are_typed_rejections() {
    let served = predictor();
    for (text, bad_line) in [
        ("n 999999999\n", 1usize),          // over the serving node cap
        ("n 3\ne 0 1 inf\n", 2),            // non-finite weight
        ("n 3\ne 1 1 1.0\n", 2),            // self-loop
        ("n 3\ne 0 1 1.0\ne 1 0 2.0\n", 3), // duplicate edge
        ("n 3\ne 0 7 1.0\n", 2),            // endpoint out of range
        ("nonsense\n", 1),                  // not the format at all
    ] {
        match served.predict_text(text) {
            Err(RequestError::Parse(e)) => {
                assert_eq!(e.line, bad_line, "wrong line for {text:?}");
            }
            other => panic!("expected Parse rejection for {text:?}, got {other:?}"),
        }
    }
}
