//! Property-based tests for model state round-trips: `snapshot`/`restore`
//! must be an exact involution for every architecture and width, and the
//! divergence guard's restore path must land on bit-identical weights.

use qcheck::{choice, prop_assert, prop_assert_eq, properties};

use gnn::train::{train, Example, TrainConfig};
use gnn::{GnnKind, GnnModel, GraphContext, ModelConfig};
use qgraph::features::FeatureConfig;
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

fn arb_kind() -> impl qcheck::Gen<Item = GnnKind> {
    choice([GnnKind::Gcn, GnnKind::Gat, GnnKind::Gin, GnnKind::Sage])
}

properties! {
    cases = 24;

    fn snapshot_restore_is_exact_involution(
        kind in arb_kind(),
        hidden_dim in 1usize..9,
        layers in 1usize..4,
        seed in qcheck::any_u64(),
    ) {
        let config = ModelConfig {
            hidden_dim,
            layers,
            ..ModelConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let model = GnnModel::new(kind, config, &mut rng);
        let g = Graph::complete(5).unwrap();

        let original = model.snapshot();
        let before = model.predict(&g);

        // Clobber every parameter through the restore path itself, then
        // restore the original snapshot: predictions and a re-taken
        // snapshot must both match bit-for-bit.
        let clobbered: Vec<_> = original.iter().map(|m| m.map(|v| v * -3.0 + 1.0)).collect();
        model.restore(&clobbered);
        model.restore(&original);
        prop_assert_eq!(model.predict(&g), before);
        let retaken = model.snapshot();
        prop_assert_eq!(retaken.len(), original.len());
        for (a, b) in retaken.iter().zip(&original) {
            prop_assert_eq!(a, b);
        }
    }

    fn export_weights_round_trips_bit_identically(
        kind in arb_kind(),
        hidden_dim in 1usize..9,
        seed in qcheck::any_u64(),
    ) {
        let config = ModelConfig {
            hidden_dim,
            ..ModelConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let model = GnnModel::new(kind, config, &mut rng);
        let rebuilt = model.export_weights().build_model().unwrap();
        let g = Graph::cycle(6).unwrap();
        prop_assert_eq!(model.predict(&g), rebuilt.predict(&g));
        prop_assert_eq!(model.export_weights(), rebuilt.export_weights());
    }
}

properties! {
    cases = 8; // training-backed, keep the budget small

    fn post_divergence_restore_is_bit_identical(
        kind in arb_kind(),
        seed in qcheck::any_u64(),
    ) {
        // A NaN label poisons the very first example, so training halts in
        // epoch 0 and must restore the initial weights exactly.
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ModelConfig {
            dropout: 0.0,
            hidden_dim: 8,
            ..ModelConfig::default()
        };
        let model = GnnModel::new(kind, config, &mut rng);
        let before = model.snapshot();

        let poisoned = Example {
            context: GraphContext::new(&Graph::cycle(5).unwrap(), &FeatureConfig::default(), 0.0),
            target: [f64::NAN, 0.5],
        };
        let history = train(
            &model,
            &[poisoned],
            &TrainConfig {
                shuffle: false,
                ..TrainConfig::quick(3)
            },
            &mut rng,
        );
        prop_assert!(history.diverged.is_some(), "{} must record divergence", kind);

        let after = model.snapshot();
        prop_assert_eq!(after.len(), before.len());
        for (a, b) in after.iter().zip(&before) {
            prop_assert_eq!(a, b);
        }
    }
}
