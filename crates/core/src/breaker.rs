//! A deterministic circuit breaker for the GNN serving rung.
//!
//! PR 5's degradation ladder makes a *single* broken prediction safe: the
//! request falls to the fixed-angle rung and the failure is recorded. What
//! it cannot do is stop *paying* for a persistently broken model — every
//! request still walks into the GNN rung, panics or produces NaN there,
//! and only then degrades. At ~85k req/s that is ~85k contained panics per
//! second for a model that has not served a good answer in minutes.
//!
//! The [`CircuitBreaker`] sits in front of the GNN rung in
//! [`crate::serve_loop`] and implements the classic three-state protocol,
//! with one twist: **everything is counted in requests, never in wall-clock
//! time**, so the breaker's behaviour is bit-reproducible under the chaos
//! harness (`tests/chaos_soak.rs`) — two runs with the same fault schedule
//! trip, back off, probe, and recover on exactly the same request indices.
//!
//! ```text
//!            failure rate over sliding window ≥ threshold
//!   Closed ───────────────────────────────────────────────► Open
//!     ▲                                                      │
//!     │ `probe_successes` consecutive good probes            │ `cooldown`
//!     │                                                      │ requests
//!     └────────────────────────── HalfOpen ◄─────────────────┘
//!                  │        ▲
//!                  └────────┘ every `probe_interval`-th request probes;
//!                             a failed probe reopens with doubled
//!                             (bounded) cooldown
//! ```
//!
//! * **Closed** — requests use the full ladder. Each GNN *attempt* outcome
//!   (served vs. failed — envelope skips and load sheds count as neither)
//!   lands in a sliding window; once the window holds at least
//!   [`BreakerConfig::min_samples`] attempts and the failure fraction
//!   reaches [`BreakerConfig::failure_threshold`], the breaker trips.
//! * **Open** — the GNN rung is skipped outright
//!   ([`crate::serve::SkipReason::BreakerOpen`]); answers come from the
//!   model-free rungs at fixed cost. After `cooldown × 2^(consecutive
//!   trips − 1)` requests (capped at [`BreakerConfig::max_cooldown`]), the
//!   breaker moves to HalfOpen.
//! * **HalfOpen** — every [`BreakerConfig::probe_interval`]-th request is
//!   allowed through as a probe; the rest stay model-free.
//!   [`BreakerConfig::probe_successes`] consecutive good probes close the
//!   breaker (and reset the backoff); one failed probe reopens it.
//!
//! The breaker is **keyed to the artifact generation**: a hot-swap to a
//! fresh generation resets it to Closed with a clean window and backoff,
//! because the whole point of publishing a retrained artifact is that the
//! old model's failure history no longer applies.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Observable breaker state (see the module docs for the transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests take the full ladder; failures are being counted.
    Closed,
    /// Tripped: the GNN rung is skipped for every request until the
    /// cooldown (in requests) elapses.
    Open,
    /// Probing: most requests skip the GNN rung, but a deterministic
    /// schedule of probe requests tests whether the model recovered.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

impl std::error::Error for BreakerState {}

/// Sizing and policy for a [`CircuitBreaker`]. All horizons are counted in
/// requests (through the breaker-guarded path), never wall-clock time, so
/// the protocol is deterministic under test.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding window of GNN-attempt outcomes the failure rate is computed
    /// over.
    pub window: usize,
    /// Minimum attempts in the window before the breaker may trip (a cold
    /// window never trips on its first failure).
    pub min_samples: usize,
    /// Trip when `failures / samples ≥ failure_threshold` (with the sample
    /// floor above). In `0.0..=1.0`.
    pub failure_threshold: f64,
    /// Base Open duration, in requests, before the first HalfOpen probe
    /// window. Doubles on every consecutive reopen.
    pub cooldown: u64,
    /// Cap on the backed-off cooldown.
    pub max_cooldown: u64,
    /// In HalfOpen, every `probe_interval`-th request is a probe.
    pub probe_interval: u64,
    /// Consecutive successful probes required to close.
    pub probe_successes: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            min_samples: 8,
            failure_threshold: 0.5,
            cooldown: 64,
            max_cooldown: 1024,
            probe_interval: 8,
            probe_successes: 3,
        }
    }
}

impl BreakerConfig {
    /// [`Default::default`] with environment overrides:
    /// `QAOA_GNN_BREAKER_WINDOW`, `QAOA_GNN_BREAKER_MIN_SAMPLES`,
    /// `QAOA_GNN_BREAKER_THRESHOLD` (a float in `0..=1`),
    /// `QAOA_GNN_BREAKER_COOLDOWN`, `QAOA_GNN_BREAKER_MAX_COOLDOWN`,
    /// `QAOA_GNN_BREAKER_PROBE_INTERVAL`, `QAOA_GNN_BREAKER_PROBES`.
    pub fn from_env() -> Self {
        let mut config = BreakerConfig::default();
        let parse = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        if let Some(window) = parse("QAOA_GNN_BREAKER_WINDOW") {
            config.window = window as usize;
        }
        if let Some(min_samples) = parse("QAOA_GNN_BREAKER_MIN_SAMPLES") {
            config.min_samples = min_samples as usize;
        }
        if let Some(threshold) = std::env::var("QAOA_GNN_BREAKER_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
        {
            config.failure_threshold = threshold.clamp(0.0, 1.0);
        }
        if let Some(cooldown) = parse("QAOA_GNN_BREAKER_COOLDOWN") {
            config.cooldown = cooldown;
        }
        if let Some(max_cooldown) = parse("QAOA_GNN_BREAKER_MAX_COOLDOWN") {
            config.max_cooldown = max_cooldown;
        }
        if let Some(interval) = parse("QAOA_GNN_BREAKER_PROBE_INTERVAL") {
            config.probe_interval = interval;
        }
        if let Some(probes) = parse("QAOA_GNN_BREAKER_PROBES") {
            config.probe_successes = probes;
        }
        config.sanitized()
    }

    /// Builder-style: sets the sliding-window size.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Builder-style: sets the minimum sample count before tripping.
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Builder-style: sets the trip threshold (clamped to `0..=1`).
    pub fn with_failure_threshold(mut self, failure_threshold: f64) -> Self {
        self.failure_threshold = failure_threshold.clamp(0.0, 1.0);
        self
    }

    /// Builder-style: sets the base Open cooldown, in requests.
    pub fn with_cooldown(mut self, cooldown: u64) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Builder-style: sets the backoff cap, in requests.
    pub fn with_max_cooldown(mut self, max_cooldown: u64) -> Self {
        self.max_cooldown = max_cooldown;
        self
    }

    /// Builder-style: sets the HalfOpen probe cadence.
    pub fn with_probe_interval(mut self, probe_interval: u64) -> Self {
        self.probe_interval = probe_interval;
        self
    }

    /// Builder-style: sets the consecutive probe successes needed to close.
    pub fn with_probe_successes(mut self, probe_successes: u64) -> Self {
        self.probe_successes = probe_successes;
        self
    }

    /// Degenerate values (zero windows, inverted caps) resolved to the
    /// nearest sane setting, so an operator typo cannot build a breaker
    /// that divides by zero or never probes.
    fn sanitized(mut self) -> Self {
        self.window = self.window.max(1);
        self.min_samples = self.min_samples.clamp(1, self.window);
        self.failure_threshold = self.failure_threshold.clamp(0.0, 1.0);
        self.cooldown = self.cooldown.max(1);
        self.max_cooldown = self.max_cooldown.max(self.cooldown);
        self.probe_interval = self.probe_interval.max(1);
        self.probe_successes = self.probe_successes.max(1);
        self
    }
}

/// What the breaker tells the serving path to do with one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run the full ladder (Closed state); record the GNN outcome.
    Full,
    /// Run the full ladder as a HalfOpen probe; the recorded outcome
    /// decides between closing and reopening.
    Probe,
    /// Skip the GNN rung entirely and answer model-free
    /// ([`crate::serve::SkipReason::BreakerOpen`]).
    Skip,
}

/// What the ladder observed at the GNN rung for one admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnObservation {
    /// The GNN rung served (finite, verified if configured).
    Served,
    /// The GNN rung failed: panic, NaN, failed verification, or a model
    /// that would not rebuild.
    Failed,
    /// The GNN rung was never attempted (out of envelope, shed, or the
    /// request was rejected before the ladder) — counts as neither.
    NotAttempted,
}

/// Point-in-time snapshot of the breaker for health and metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Artifact generation the window and state apply to.
    pub generation: u64,
    /// Total trips (Closed→Open and HalfOpen→Open) since construction,
    /// across generations.
    pub trips: u64,
    /// GNN attempts currently in the sliding window.
    pub window_samples: usize,
    /// Failures among those attempts.
    pub window_failures: usize,
}

enum Phase {
    Closed,
    Open {
        /// Request-clock reading at which HalfOpen begins.
        until: u64,
    },
    HalfOpen {
        probes_ok: u64,
        /// Request-clock reading of the next probe.
        next_probe: u64,
    },
}

struct Core {
    phase: Phase,
    /// Artifact generation the state applies to; a new generation resets.
    generation: u64,
    /// Sliding window of GNN attempts; `true` = failure.
    window: VecDeque<bool>,
    failures: usize,
    /// Requests admitted through the breaker-guarded path, the protocol's
    /// only clock.
    clock: u64,
    /// Consecutive trips without an intervening close (backoff exponent).
    consecutive_trips: u32,
    trips: u64,
}

/// The breaker itself: interior-mutable, shared by every worker of a
/// [`crate::serve_loop::ServeLoop`]. See the module docs for the protocol.
pub struct CircuitBreaker {
    config: BreakerConfig,
    core: Mutex<Core>,
}

impl CircuitBreaker {
    /// A Closed breaker for generation 0 under `config` (degenerate values
    /// sanitized; see [`BreakerConfig`]).
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config: config.sanitized(),
            core: Mutex::new(Core {
                phase: Phase::Closed,
                generation: 0,
                window: VecDeque::new(),
                failures: 0,
                clock: 0,
                consecutive_trips: 0,
                trips: 0,
            }),
        }
    }

    /// The (sanitized) policy this breaker runs.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Admits one request against artifact `generation`, advancing the
    /// request clock and returning what the serving path should do.
    ///
    /// A generation the breaker has not seen resets it to Closed first —
    /// a freshly hot-swapped artifact starts with a clean record.
    pub fn admit(&self, generation: u64) -> BreakerDecision {
        let mut core = self.lock();
        core.reset_if_new_generation(generation);
        core.clock += 1;
        match core.phase {
            Phase::Closed => BreakerDecision::Full,
            Phase::Open { until } => {
                if core.clock >= until {
                    // Cooldown elapsed: move to HalfOpen and spend this
                    // request as the first probe.
                    core.phase = Phase::HalfOpen {
                        probes_ok: 0,
                        next_probe: core.clock + self.config.probe_interval,
                    };
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Skip
                }
            }
            Phase::HalfOpen {
                probes_ok,
                next_probe,
            } => {
                if core.clock >= next_probe {
                    core.phase = Phase::HalfOpen {
                        probes_ok,
                        next_probe: core.clock + self.config.probe_interval,
                    };
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Skip
                }
            }
        }
    }

    /// Records what the ladder observed for a request previously admitted
    /// with `decision`. Stale reports (from a generation the breaker has
    /// already moved past) are ignored.
    pub fn record(&self, generation: u64, decision: BreakerDecision, observed: GnnObservation) {
        let mut core = self.lock();
        if generation != core.generation || observed == GnnObservation::NotAttempted {
            return;
        }
        let failed = observed == GnnObservation::Failed;
        match (&core.phase, decision) {
            (Phase::Closed, BreakerDecision::Full) => {
                core.window.push_back(failed);
                core.failures += failed as usize;
                while core.window.len() > self.config.window {
                    let evicted = core.window.pop_front().expect("non-empty window");
                    core.failures -= evicted as usize;
                }
                let samples = core.window.len();
                if samples >= self.config.min_samples
                    && core.failures as f64 >= self.config.failure_threshold * samples as f64
                {
                    self.trip(&mut core);
                }
            }
            (Phase::HalfOpen { probes_ok, .. }, BreakerDecision::Probe) => {
                if failed {
                    self.trip(&mut core);
                } else {
                    let probes_ok = probes_ok + 1;
                    if probes_ok >= self.config.probe_successes {
                        // Recovered: clean slate, backoff forgiven.
                        core.phase = Phase::Closed;
                        core.window.clear();
                        core.failures = 0;
                        core.consecutive_trips = 0;
                    } else if let Phase::HalfOpen {
                        probes_ok: slot, ..
                    } = &mut core.phase
                    {
                        *slot = probes_ok;
                    }
                }
            }
            // A decision made under a phase the breaker has since left
            // (e.g. a Full outcome arriving after a trip) carries no
            // signal for the new phase.
            _ => {}
        }
    }

    /// Eagerly resets the breaker to Closed for a newly published
    /// `generation`. Admission does this lazily on the next request; the
    /// serving loop calls this at hot-swap time so health and metrics
    /// reflect the clean slate immediately, not one request later.
    pub fn reset_for_generation(&self, generation: u64) {
        self.lock().reset_if_new_generation(generation);
    }

    /// Current state (does not advance the clock).
    pub fn state(&self) -> BreakerState {
        match self.lock().phase {
            Phase::Closed => BreakerState::Closed,
            Phase::Open { .. } => BreakerState::Open,
            Phase::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Point-in-time snapshot for health and metrics.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let core = self.lock();
        BreakerSnapshot {
            state: match core.phase {
                Phase::Closed => BreakerState::Closed,
                Phase::Open { .. } => BreakerState::Open,
                Phase::HalfOpen { .. } => BreakerState::HalfOpen,
            },
            generation: core.generation,
            trips: core.trips,
            window_samples: core.window.len(),
            window_failures: core.failures,
        }
    }

    /// Total trips since construction (monotone, across generations).
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }

    fn trip(&self, core: &mut Core) {
        let backoff = self
            .config
            .cooldown
            .saturating_shl(core.consecutive_trips.min(32))
            .min(self.config.max_cooldown);
        core.phase = Phase::Open {
            until: core.clock + backoff,
        };
        core.window.clear();
        core.failures = 0;
        core.consecutive_trips += 1;
        core.trips += 1;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Core> {
        // A panic while holding the lock leaves only consistent state
        // behind (every mutation is single-field or completed in place),
        // so poison is tolerated rather than propagated.
        self.core.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl Core {
    fn reset_if_new_generation(&mut self, generation: u64) {
        if generation == self.generation {
            return;
        }
        self.generation = generation;
        self.phase = Phase::Closed;
        self.window.clear();
        self.failures = 0;
        self.consecutive_trips = 0;
        // `clock` and `trips` are monotone across generations on purpose:
        // the clock is a request counter, the trip count a lifetime stat.
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= u64::BITS {
            return u64::MAX;
        }
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("CircuitBreaker")
            .field("state", &snapshot.state)
            .field("generation", &snapshot.generation)
            .field("trips", &snapshot.trips)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: 10,
            max_cooldown: 40,
            probe_interval: 3,
            probe_successes: 2,
        }
    }

    /// Drives one request through admit+record with the given observation
    /// when the ladder runs.
    fn step(b: &CircuitBreaker, generation: u64, obs: GnnObservation) -> BreakerDecision {
        let decision = b.admit(generation);
        if decision != BreakerDecision::Skip {
            b.record(generation, decision, obs);
        }
        decision
    }

    #[test]
    fn closed_until_failure_rate_crosses_threshold_with_min_samples() {
        let b = CircuitBreaker::new(tight());
        // Three straight failures: below min_samples, still Closed.
        for _ in 0..3 {
            assert_eq!(step(&b, 0, GnnObservation::Failed), BreakerDecision::Full);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Fourth failure: 4/4 ≥ 0.5 with min_samples met → Open.
        step(&b, 0, GnnObservation::Failed);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn healthy_traffic_never_trips() {
        let b = CircuitBreaker::new(tight());
        for _ in 0..1000 {
            assert_eq!(step(&b, 0, GnnObservation::Served), BreakerDecision::Full);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn not_attempted_outcomes_carry_no_signal() {
        let b = CircuitBreaker::new(tight());
        for _ in 0..100 {
            step(&b, 0, GnnObservation::NotAttempted);
        }
        let snapshot = b.snapshot();
        assert_eq!(snapshot.window_samples, 0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_skips_until_cooldown_then_probes() {
        let b = CircuitBreaker::new(tight());
        for _ in 0..4 {
            step(&b, 0, GnnObservation::Failed);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown is 10 requests; until = clock(4) + 10 = 14, so requests
        // with clock 5..=13 skip and clock 14 probes.
        for _ in 5..14 {
            assert_eq!(b.admit(0), BreakerDecision::Skip);
        }
        assert_eq!(b.admit(0), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_schedule_is_deterministic_and_closes_on_successes() {
        let b = CircuitBreaker::new(tight());
        for _ in 0..4 {
            step(&b, 0, GnnObservation::Failed);
        }
        let mut decisions = Vec::new();
        // Walk until closed, recording Served on every probe.
        for _ in 0..40 {
            let d = step(&b, 0, GnnObservation::Served);
            decisions.push(d);
            if b.state() == BreakerState::Closed {
                break;
            }
        }
        assert_eq!(b.state(), BreakerState::Closed, "{decisions:?}");
        let probes = decisions
            .iter()
            .filter(|d| **d == BreakerDecision::Probe)
            .count();
        assert_eq!(probes, 2, "closes after exactly probe_successes probes");
        // Between the two probes: probe_interval − 1 skips.
        let first = decisions.iter().position(|d| *d == BreakerDecision::Probe).unwrap();
        let second = decisions[first + 1..]
            .iter()
            .position(|d| *d == BreakerDecision::Probe)
            .unwrap();
        assert_eq!(second + 1, 3, "probe cadence is probe_interval");
    }

    #[test]
    fn failed_probe_reopens_with_doubled_bounded_backoff() {
        let b = CircuitBreaker::new(tight());
        let mut reopen_gaps = Vec::new();
        // Trip once, then fail every probe; measure each Open span.
        for _ in 0..4 {
            step(&b, 0, GnnObservation::Failed);
        }
        for _trip in 0..4 {
            assert_eq!(b.state(), BreakerState::Open);
            let mut skips = 0u64;
            loop {
                match b.admit(0) {
                    BreakerDecision::Skip => skips += 1,
                    BreakerDecision::Probe => {
                        b.record(0, BreakerDecision::Probe, GnnObservation::Failed);
                        break;
                    }
                    BreakerDecision::Full => panic!("cannot be Closed here"),
                }
            }
            reopen_gaps.push(skips + 1);
        }
        // Backoff 10 → 20 → 40 → 40 (capped at max_cooldown).
        assert_eq!(reopen_gaps, vec![10, 20, 40, 40]);
        assert_eq!(b.trips(), 5);
    }

    #[test]
    fn recovery_resets_the_backoff() {
        let b = CircuitBreaker::new(tight());
        // Trip, fail one probe (backoff doubles), then recover.
        for _ in 0..4 {
            step(&b, 0, GnnObservation::Failed);
        }
        loop {
            if b.admit(0) == BreakerDecision::Probe {
                b.record(0, BreakerDecision::Probe, GnnObservation::Failed);
                break;
            }
        }
        loop {
            if b.admit(0) == BreakerDecision::Probe {
                b.record(0, BreakerDecision::Probe, GnnObservation::Served);
                if b.state() == BreakerState::Closed {
                    break;
                }
            }
        }
        // Trip again: the Open span must be back to the base cooldown.
        for _ in 0..4 {
            step(&b, 0, GnnObservation::Failed);
        }
        let mut skips = 0;
        while b.admit(0) == BreakerDecision::Skip {
            skips += 1;
        }
        assert_eq!(skips + 1, 10, "backoff resets after a clean close");
    }

    #[test]
    fn new_generation_resets_to_closed() {
        let b = CircuitBreaker::new(tight());
        for _ in 0..4 {
            step(&b, 0, GnnObservation::Failed);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // A hot-swap publishes generation 1: clean slate immediately.
        assert_eq!(b.admit(1), BreakerDecision::Full);
        assert_eq!(b.state(), BreakerState::Closed);
        let snapshot = b.snapshot();
        assert_eq!(snapshot.generation, 1);
        assert_eq!(snapshot.window_samples, 0);
        assert_eq!(snapshot.trips, 1, "trip count is a lifetime stat");
    }

    #[test]
    fn stale_generation_reports_are_ignored() {
        let b = CircuitBreaker::new(tight());
        b.admit(1); // moves to generation 1
        for _ in 0..16 {
            b.record(0, BreakerDecision::Full, GnnObservation::Failed);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.snapshot().window_samples, 0);
    }

    #[test]
    fn sliding_window_forgets_old_failures() {
        let b = CircuitBreaker::new(tight());
        // A failure, then a long run of successes: the window (8) evicts
        // the failure and the breaker must not trip at any point (the
        // failure fraction never reaches 0.5 once min_samples is met).
        step(&b, 0, GnnObservation::Failed);
        for _ in 0..20 {
            step(&b, 0, GnnObservation::Served);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        let snapshot = b.snapshot();
        assert_eq!(snapshot.window_failures, 0);
        assert_eq!(snapshot.window_samples, 8);
    }

    #[test]
    fn config_sanitizes_degenerate_values() {
        let config = BreakerConfig {
            window: 0,
            min_samples: 0,
            failure_threshold: 7.0,
            cooldown: 0,
            max_cooldown: 0,
            probe_interval: 0,
            probe_successes: 0,
        };
        let b = CircuitBreaker::new(config);
        let c = b.config();
        assert_eq!(c.window, 1);
        assert_eq!(c.min_samples, 1);
        assert_eq!(c.failure_threshold, 1.0);
        assert!(c.cooldown >= 1 && c.max_cooldown >= c.cooldown);
        assert!(c.probe_interval >= 1 && c.probe_successes >= 1);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(BreakerState::Closed.to_string(), "closed");
        assert_eq!(BreakerState::Open.to_string(), "open");
        assert_eq!(BreakerState::HalfOpen.to_string(), "half-open");
    }
}
