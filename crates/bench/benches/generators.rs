//! Criterion benchmarks for graph generation and exact Max-Cut — the
//! remaining fixed costs of building the labeled dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use qgraph::{generate, maxcut};

fn bench_random_regular(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_regular_n15");
    for degree in [2usize, 4, 8, 14] {
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, &d| {
            let mut rng = StdRng::seed_from_u64(31);
            b.iter(|| {
                // n*d parity: 15 only works with even degrees; bump to 16.
                let n = if (15 * d) % 2 == 0 { 15 } else { 16 };
                generate::random_regular(n, d, &mut rng).expect("feasible shape")
            });
        });
    }
    group.finish();
}

fn bench_brute_force_maxcut(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force_maxcut");
    group.sample_size(10);
    for nodes in [10usize, 13, 15] {
        let mut rng = StdRng::seed_from_u64(32);
        let graph = generate::erdos_renyi(nodes, 0.4, &mut rng).expect("valid p");
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| maxcut::brute_force(&graph));
        });
    }
    group.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(33);
    let graph = generate::erdos_renyi(15, 0.4, &mut rng).expect("valid p");
    let mut group = c.benchmark_group("maxcut_heuristics_n15");
    group.bench_function("greedy", |b| b.iter(|| maxcut::greedy(&graph)));
    group.bench_function("local_search", |b| {
        b.iter(|| maxcut::local_search(&graph, vec![false; 15]))
    });
    group.finish();
}

criterion_group!(benches, bench_random_regular, bench_brute_force_maxcut, bench_heuristics);
criterion_main!(benches);
