//! Guarded serving: hostile-input-safe inference with a degradation ladder.
//!
//! [`RunArtifact`] answers "how do I persist a trained predictor";
//! this module answers "how do I put one in front of untrusted requests".
//! A [`GuardedPredictor`] wraps a loaded artifact and runs every request
//! through four defenses:
//!
//! 1. **Strict input validation** — text requests parse under
//!    [`ParseLimits`] (size/node/edge caps checked *before* allocation,
//!    non-finite weights, self-loops and duplicate edges rejected with
//!    typed, line-numbered [`qgraph::ParseError`]s); pre-built graphs are
//!    checked against the same caps.
//! 2. **Envelope checks** — the request is compared against the
//!    [`TrainingEnvelope`] recorded in the artifact (§3.1 trains on
//!    2–15-node graphs; Jain et al., arXiv:2111.03016, show GNN
//!    warm-starts degrade out-of-distribution). Out-of-envelope requests
//!    skip the GNN rung — or are rejected outright under
//!    [`ServeConfig::strict_envelope`].
//! 3. **Prediction guardrails** — non-finite model outputs are never
//!    served; finite outputs are clamped to the principal domain
//!    `γ ∈ [0, 2π]`, `β ∈ [0, π/2]` (a no-op for a healthy model, whose
//!    sigmoid head already lands inside it, so guarded predictions are
//!    bit-identical to the raw `predict` path). Small requests are
//!    optionally re-checked on the simulator.
//! 4. **A degradation ladder** — when a rung cannot serve, the request
//!    falls to the next one, and every hop is recorded in the returned
//!    [`PredictionOutcome`]:
//!
//! ```text
//! GNN prediction  →  nearest fixed angles  →  envelope-mean / default init
//! (rung Gnn)         (rung FixedAngle)        (rung Fallback, total)
//! ```
//!
//! The ladder never panics and never falls silently: a caller always gets
//! either a typed [`RequestError`] (the *request* was bad) or a
//! [`PredictionOutcome`] naming the rung that answered and the reason for
//! every rung that did not.
//!
//! # The typed request API
//!
//! Every way into the predictor is one method,
//! [`GuardedPredictor::handle`], taking a [`ServeRequest`] message — a
//! graph-or-text payload plus per-request policy (deadline, [`Priority`],
//! a [`Rung`] quality floor) — and returning a [`ServeResponse`]. The
//! historical `predict` / `predict_text` / `serve_batch` trio survives as
//! thin deprecated wrappers over the same internals, proven bit-identical
//! in `tests/serve_loop.rs`. The deadline and priority fields are
//! honored by the concurrent request loop ([`crate::serve_loop`]), which
//! also drives the **load-shed path** ([`GuardedPredictor::handle_shed`]):
//! under saturation a request skips the GNN rung — recorded as
//! [`SkipReason::Shed`] — and is answered from the cheap fixed-angle
//! rung instead of queueing unboundedly.
//!
//! Every defense is exercised by deterministic fault injection
//! ([`crate::faults`]) rather than trusted on inspection — see
//! `tests/serve_degradation.rs` for the failpoint × rung matrix.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use gnn::GnnModel;
use qaoa::{fixed_angle, Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::io::ParseLimits;
use qgraph::{Graph, ParseError};

use crate::faults::{self, FaultAction};
use crate::store::{ArtifactError, EnvelopeViolation, RunArtifact, TrainingEnvelope};

/// Serving policy knobs.
///
/// Built like [`crate::pipeline::PipelineConfig`]: start from
/// [`Default::default`] (or [`ServeConfig::from_env`]) and refine with the
/// `with_*` builders.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Caps applied to incoming requests (text requests at parse time,
    /// pre-built graphs before any other work).
    pub limits: ParseLimits,
    /// Reject out-of-envelope requests with [`RequestError::OutOfEnvelope`]
    /// instead of degrading past the GNN rung.
    pub strict_envelope: bool,
    /// Verify served GNN / fixed-angle parameters on the statevector
    /// simulator when the request has at most this many nodes (`0`
    /// disables verification). A non-finite score degrades the rung.
    pub verify_max_nodes: usize,
    /// Pooled amplitude-sweep workers per verification for registers at
    /// or above the simulator crossover; `0` (the default) keeps
    /// `verified_score` on the historical bit-identical serial path.
    pub sim_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            limits: ParseLimits::serving(),
            strict_envelope: false,
            verify_max_nodes: 16,
            sim_threads: 0,
        }
    }
}

impl ServeConfig {
    /// [`Default::default`] with optional environment overrides, the same
    /// treatment [`crate::pipeline::PipelineConfig::from_env`] gives the
    /// training side:
    ///
    /// * `QAOA_GNN_SERVE_STRICT` — non-empty, non-`0`: reject
    ///   out-of-envelope requests instead of degrading.
    /// * `QAOA_GNN_SERVE_VERIFY_MAX_NODES` — simulator-verification node
    ///   cap (`0` disables verification).
    /// * `QAOA_GNN_SERVE_MAX_NODES` / `QAOA_GNN_SERVE_MAX_EDGES` —
    ///   request size caps.
    /// * `QAOA_GNN_SIM_THREADS` — pooled sweep workers per verification
    ///   (shared with the training pipeline's variable).
    pub fn from_env() -> Self {
        let mut config = ServeConfig::default();
        let parse = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        if matches!(std::env::var("QAOA_GNN_SERVE_STRICT"), Ok(v) if !v.is_empty() && v != "0") {
            config = config.with_strict_envelope(true);
        }
        if let Some(cap) = parse("QAOA_GNN_SERVE_VERIFY_MAX_NODES") {
            config = config.with_verify_max_nodes(cap);
        }
        if let Some(max_nodes) = parse("QAOA_GNN_SERVE_MAX_NODES") {
            config.limits.max_nodes = max_nodes;
        }
        if let Some(max_edges) = parse("QAOA_GNN_SERVE_MAX_EDGES") {
            config.limits.max_edges = max_edges;
        }
        if let Some(sim_threads) = parse("QAOA_GNN_SIM_THREADS") {
            config = config.with_sim_threads(sim_threads);
        }
        config
    }

    /// Builder-style: sets the request parsing/size caps.
    pub fn with_limits(mut self, limits: ParseLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Builder-style: sets strict envelope policy (reject instead of
    /// degrade on out-of-envelope requests).
    pub fn with_strict_envelope(mut self, strict: bool) -> Self {
        self.strict_envelope = strict;
        self
    }

    /// Builder-style: sets the simulator-verification node cap (`0`
    /// disables verification).
    pub fn with_verify_max_nodes(mut self, verify_max_nodes: usize) -> Self {
        self.verify_max_nodes = verify_max_nodes;
        self
    }

    /// Builder-style: sets the pooled sweep-worker count per verification
    /// (`0` = the bit-identical serial path).
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads;
        self
    }
}

/// A rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// The trained GNN's prediction (the paper's path).
    Gnn,
    /// Nearest fixed angles ([`fixed_angle::nearest_for_graph`]).
    FixedAngle,
    /// Envelope-mean label when the artifact records one, otherwise the
    /// deterministic default init. Total: this rung always answers.
    Fallback,
}

impl Rung {
    /// Ladder quality: higher serves better parameters. `Gnn` (2) >
    /// `FixedAngle` (1) > `Fallback` (0). Used by
    /// [`ServeRequest::rung_floor`] to reject answers below a requested
    /// quality instead of silently serving them.
    pub fn quality(self) -> u8 {
        match self {
            Rung::Gnn => 2,
            Rung::FixedAngle => 1,
            Rung::Fallback => 0,
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::Gnn => write!(f, "gnn"),
            Rung::FixedAngle => write!(f, "fixed-angle"),
            Rung::Fallback => write!(f, "fallback"),
        }
    }
}

/// Why a rung declined (or failed) to serve a request.
#[derive(Debug, Clone, PartialEq)]
pub enum SkipReason {
    /// The model could not be reconstructed from the artifact's weights.
    ModelUnavailable(String),
    /// The request falls outside the recorded training envelope.
    OutOfEnvelope(EnvelopeViolation),
    /// The rung panicked; the panic was contained.
    Panicked,
    /// The rung produced a non-finite angle.
    NonFinite {
        /// The γ it produced.
        gamma: f64,
        /// The β it produced.
        beta: f64,
    },
    /// Simulator verification produced a non-finite score.
    VerificationFailed,
    /// The rung does not apply to this graph (e.g. fixed angles on an
    /// edgeless graph).
    NotApplicable,
    /// The serving loop shed this request under load: the GNN rung was
    /// skipped deliberately so the queue drains on the cheap fixed-angle
    /// path instead of growing unboundedly.
    Shed {
        /// Queue depth observed at the shed decision.
        queue_depth: usize,
    },
    /// The circuit breaker on the GNN rung is open: the model has been
    /// failing persistently, so the rung is skipped outright (at fixed
    /// cost) until Half-Open probes show it recovered. See
    /// [`crate::breaker`].
    BreakerOpen,
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipReason::ModelUnavailable(e) => write!(f, "model unavailable: {e}"),
            SkipReason::OutOfEnvelope(v) => write!(f, "out of training envelope: {v}"),
            SkipReason::Panicked => write!(f, "panicked (contained)"),
            SkipReason::NonFinite { gamma, beta } => {
                write!(f, "non-finite prediction (γ={gamma}, β={beta})")
            }
            SkipReason::VerificationFailed => write!(f, "simulator verification failed"),
            SkipReason::NotApplicable => write!(f, "not applicable to this graph"),
            SkipReason::Shed { queue_depth } => {
                write!(f, "shed under load (queue depth {queue_depth})")
            }
            SkipReason::BreakerOpen => write!(f, "circuit breaker open"),
        }
    }
}

/// One recorded hop down the ladder: which rung was skipped and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Skip {
    /// The rung that declined.
    pub rung: Rung,
    /// Why it declined.
    pub reason: SkipReason,
}

/// How the request relates to the artifact's training envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnvelopeStatus {
    /// Inside the recorded envelope.
    InEnvelope,
    /// The artifact predates envelopes; the GNN served unchecked and this
    /// outcome says so.
    Unknown,
    /// Outside the envelope (the GNN rung was skipped).
    Violated(EnvelopeViolation),
}

/// The fully-accounted result of one guarded prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionOutcome {
    /// The served parameters — always depth 1, always finite, always in
    /// the principal domain.
    pub params: Params,
    /// The rung that produced them.
    pub rung: Rung,
    /// Every rung skipped on the way down, in ladder order. Empty when the
    /// GNN served directly.
    pub skips: Vec<Skip>,
    /// Envelope standing of the request.
    pub envelope: EnvelopeStatus,
    /// Whether the guardrails had to clamp the serving rung's output into
    /// the principal domain (`false` for a healthy model).
    pub clamped: bool,
    /// Simulator expectation of the served parameters, when verification
    /// ran on the serving rung.
    pub verified_score: Option<f64>,
    /// `true` when this outcome was served from the canonical-form
    /// prediction cache ([`crate::cache::PredictionCache`]) rather than a
    /// fresh ladder run. Apart from this marker, a cached reply is
    /// bit-identical to the fresh reply it memoized.
    pub cached: bool,
}

impl PredictionOutcome {
    /// The served `(γ, β)` pair.
    pub fn angles(&self) -> (f64, f64) {
        (self.params.gammas()[0], self.params.betas()[0])
    }

    /// `true` when the GNN itself answered with no degradation and no
    /// clamping — the outcome a healthy deployment sees.
    pub fn is_clean(&self) -> bool {
        self.rung == Rung::Gnn && self.skips.is_empty() && !self.clamped
    }

    /// `true` when this request was load-shed (a [`SkipReason::Shed`] hop
    /// is recorded).
    pub fn was_shed(&self) -> bool {
        self.skips
            .iter()
            .any(|s| matches!(s.reason, SkipReason::Shed { .. }))
    }

    /// `true` when the GNN rung was skipped because its circuit breaker
    /// was open (a [`SkipReason::BreakerOpen`] hop is recorded).
    pub fn was_breaker_skipped(&self) -> bool {
        self.skips
            .iter()
            .any(|s| matches!(s.reason, SkipReason::BreakerOpen))
    }

    /// One-line human-readable account, e.g.
    /// `fixed-angle (γ=0.6155, β=0.3927) after gnn: out of training envelope: …`.
    pub fn summary(&self) -> String {
        let (gamma, beta) = self.angles();
        let mut s = format!("{} (γ={gamma:.4}, β={beta:.4})", self.rung);
        if let Some(score) = self.verified_score {
            s.push_str(&format!(", verified E[cut]={score:.4}"));
        }
        if self.clamped {
            s.push_str(", clamped");
        }
        if self.cached {
            s.push_str(", cached");
        }
        for skip in &self.skips {
            s.push_str(&format!("; {} skipped: {}", skip.rung, skip.reason));
        }
        if self.envelope == EnvelopeStatus::Unknown {
            s.push_str("; envelope unknown (pre-envelope artifact)");
        }
        s
    }
}

/// Request urgency, honored by the serving loop's admission policy: under
/// saturation `Normal` requests shed to the fixed-angle rung first, while
/// `High` requests keep the full ladder until the queue is hard-full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Best-effort (the default): sheds first under load.
    #[default]
    Normal,
    /// Latency/quality-critical: sheds only at hard queue capacity.
    High,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Normal => write!(f, "normal"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// What a [`ServeRequest`] carries: a pre-built graph or untrusted text
/// to parse under the serving limits.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestPayload {
    /// An already-constructed graph (still checked against the size caps).
    Graph(Graph),
    /// Graph text in the repository's edge-list format; parsed with the
    /// strict, line-numbered serving parser.
    Text(String),
}

/// One typed serving request: the payload plus per-request policy.
///
/// Construct with [`ServeRequest::from_graph`] / [`ServeRequest::from_text`]
/// and refine with the `with_*` builders:
///
/// ```
/// use qaoa_gnn::serve::{Priority, Rung, ServeRequest};
/// let request = ServeRequest::from_text("n 3\ne 0 1\ne 1 2\ne 0 2\n")
///     .with_priority(Priority::High)
///     .with_deadline_micros(5_000)
///     .with_rung_floor(Rung::FixedAngle);
/// assert_eq!(request.priority, Priority::High);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// The instance to predict parameters for.
    pub payload: RequestPayload,
    /// Admission urgency (see [`Priority`]).
    pub priority: Priority,
    /// Queueing budget in microseconds: if the request waits longer than
    /// this in the serving loop's queue it is shed to the fixed-angle
    /// rung rather than served late at full quality. `None` = patient.
    /// Ignored by the direct synchronous [`GuardedPredictor::handle`]
    /// path, which never queues.
    pub deadline_micros: Option<u64>,
    /// Minimum acceptable answer quality. A response whose serving rung
    /// is *below* this floor becomes [`RequestError::BelowFloor`] instead
    /// of a silently degraded answer. `None` accepts the whole ladder.
    pub rung_floor: Option<Rung>,
}

impl ServeRequest {
    /// A default-policy request for a pre-built graph.
    pub fn from_graph(graph: Graph) -> ServeRequest {
        ServeRequest {
            payload: RequestPayload::Graph(graph),
            priority: Priority::Normal,
            deadline_micros: None,
            rung_floor: None,
        }
    }

    /// A default-policy request for untrusted graph text.
    pub fn from_text(text: impl Into<String>) -> ServeRequest {
        ServeRequest {
            payload: RequestPayload::Text(text.into()),
            priority: Priority::Normal,
            deadline_micros: None,
            rung_floor: None,
        }
    }

    /// Builder-style: sets the admission priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Builder-style: sets the queueing deadline in microseconds.
    pub fn with_deadline_micros(mut self, deadline_micros: u64) -> Self {
        self.deadline_micros = Some(deadline_micros);
        self
    }

    /// Builder-style: sets the minimum acceptable serving rung.
    pub fn with_rung_floor(mut self, floor: Rung) -> Self {
        self.rung_floor = Some(floor);
        self
    }
}

/// The typed reply to one [`ServeRequest`].
#[derive(Debug)]
pub struct ServeResponse {
    /// A fully-accounted prediction, or a typed rejection. Exactly one
    /// response exists per handled request — the serving layer never
    /// drops a request on the floor.
    pub result: Result<PredictionOutcome, RequestError>,
}

impl ServeResponse {
    /// The outcome, when the request was served.
    pub fn outcome(&self) -> Option<&PredictionOutcome> {
        self.result.as_ref().ok()
    }

    /// The rejection, when the request was refused.
    pub fn error(&self) -> Option<&RequestError> {
        self.result.as_ref().err()
    }

    /// `true` when the request was served via the load-shed path.
    pub fn was_shed(&self) -> bool {
        self.outcome().is_some_and(PredictionOutcome::was_shed)
    }
}

/// Why a request was rejected outright (as opposed to served degraded).
#[derive(Debug)]
pub enum RequestError {
    /// A text request failed validation; carries the line-numbered cause.
    Parse(ParseError),
    /// A pre-built graph exceeds the serving node cap.
    TooManyNodes {
        /// Request graph's node count.
        n: usize,
        /// Configured cap.
        cap: usize,
    },
    /// A pre-built graph exceeds the serving edge cap.
    TooManyEdges {
        /// Request graph's edge count.
        m: usize,
        /// Configured cap.
        cap: usize,
    },
    /// Out-of-envelope request under [`ServeConfig::strict_envelope`].
    OutOfEnvelope(EnvelopeViolation),
    /// The ladder answered below the request's [`ServeRequest::rung_floor`];
    /// the caller preferred a typed refusal over a low-quality answer.
    BelowFloor {
        /// The rung that would have served.
        served: Rung,
        /// The floor the request demanded.
        floor: Rung,
    },
    /// The serving loop's admission stage refused the request (only
    /// reachable through the `admission` failpoint or a poisoned queue —
    /// healthy saturation sheds instead of refusing).
    Admission(String),
    /// The guarded pipeline itself panicked through every rung-level
    /// defense (only reachable from [`GuardedPredictor::serve_batch`] and
    /// the serving loop's workers, which contain it to the offending
    /// item).
    Internal(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Parse(e) => write!(f, "invalid request: {e}"),
            RequestError::TooManyNodes { n, cap } => {
                write!(f, "request has {n} nodes, serving cap is {cap}")
            }
            RequestError::TooManyEdges { m, cap } => {
                write!(f, "request has {m} edges, serving cap is {cap}")
            }
            RequestError::OutOfEnvelope(v) => {
                write!(f, "request rejected (strict envelope): {v}")
            }
            RequestError::BelowFloor { served, floor } => {
                write!(
                    f,
                    "ladder answered on the {served} rung, below the requested {floor} floor"
                )
            }
            RequestError::Admission(e) => write!(f, "request refused at admission: {e}"),
            RequestError::Internal(e) => write!(f, "internal serving failure: {e}"),
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Parse(e) => Some(e),
            RequestError::OutOfEnvelope(v) => Some(v),
            _ => None,
        }
    }
}

impl From<ParseError> for RequestError {
    fn from(e: ParseError) -> Self {
        RequestError::Parse(e)
    }
}

/// Deterministic last-resort initialization when the artifact records no
/// envelope mean: the degree-2 closed-form fixed angles `(π/4, π/8)` — a
/// sane interior point of the principal domain for any instance.
fn default_init() -> (f64, f64) {
    (
        std::f64::consts::FRAC_PI_4,
        std::f64::consts::PI / 8.0,
    )
}

/// A serving wrapper around a loaded [`RunArtifact`]: validation, envelope
/// checks, guardrails and the degradation ladder, per the module docs.
///
/// Construction is infallible given an artifact: if the model cannot be
/// rebuilt from the weights, the predictor still serves — every request
/// simply starts one rung down, with the build failure recorded in each
/// outcome's skip list.
pub struct GuardedPredictor {
    artifact: Arc<RunArtifact>,
    model: Result<GnnModel, String>,
    config: ServeConfig,
    /// Canonical-form cache binding, when serving behind
    /// [`crate::serve_loop::ServeLoop`] (or attached explicitly). The
    /// generation pins which artifact's answers the shared cache may serve
    /// through this predictor.
    cache: Option<(Arc<crate::cache::PredictionCache>, u64)>,
}

impl GuardedPredictor {
    /// Wraps an already-loaded artifact. Model reconstruction happens once,
    /// here, behind the `weight_build` failpoint; failure (or a contained
    /// panic) disables the GNN rung but not the predictor.
    pub fn new(artifact: RunArtifact, config: ServeConfig) -> GuardedPredictor {
        GuardedPredictor::shared(Arc::new(artifact), config)
    }

    /// [`Self::new`] on an artifact that is already reference-counted.
    /// The serving loop uses this so its worker threads rebuild their
    /// per-thread models (the autodiff tape is single-threaded) from one
    /// shared weight image instead of each holding a private copy.
    pub fn shared(artifact: Arc<RunArtifact>, config: ServeConfig) -> GuardedPredictor {
        let model = catch_unwind(AssertUnwindSafe(|| {
            if faults::fire_may_panic(faults::WEIGHT_BUILD).is_some() {
                return Err("fault injected: weight_build".to_string());
            }
            artifact.build_model().map_err(|e| e.to_string())
        }))
        .unwrap_or_else(|_| Err("model construction panicked (contained)".to_string()));
        GuardedPredictor {
            artifact,
            model,
            config,
            cache: None,
        }
    }

    /// Attaches a shared canonical-form cache, binding it to the artifact
    /// generation this predictor serves. Lookups run ahead of the GNN rung;
    /// only clean GNN outcomes ([`PredictionOutcome::is_clean`]) are
    /// inserted, so degraded replies are never pinned. A predictor without
    /// a cache (the default) behaves exactly as before.
    pub fn with_cache(
        mut self,
        cache: Arc<crate::cache::PredictionCache>,
        generation: u64,
    ) -> GuardedPredictor {
        self.cache = Some((cache, generation));
        self
    }

    /// Loads an artifact from disk (full [`RunArtifact::load`] validation:
    /// format, version, checksums, weight shapes) and wraps it.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] — a predictor is never built on a file that
    /// failed validation.
    pub fn load<P: AsRef<std::path::Path>>(
        path: P,
        config: ServeConfig,
    ) -> Result<GuardedPredictor, ArtifactError> {
        Ok(GuardedPredictor::new(RunArtifact::load(path)?, config))
    }

    /// The wrapped artifact.
    pub fn artifact(&self) -> &RunArtifact {
        self.artifact.as_ref()
    }

    /// The serving policy this predictor was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// `true` when the GNN rung is available (weights rebuilt cleanly).
    pub fn model_available(&self) -> bool {
        self.model.is_ok()
    }

    /// The training envelope the artifact records, if any.
    pub fn envelope(&self) -> Option<&TrainingEnvelope> {
        self.artifact.envelope.as_ref()
    }

    /// Serves one typed request — the single entry point every payload
    /// shape and policy routes through. Text payloads parse under the
    /// strict serving limits; graph payloads are cap-checked; the ladder
    /// runs; then the request's [`ServeRequest::rung_floor`] is enforced
    /// on the answer. Never panics, never drops: exactly one
    /// [`ServeResponse`] per call.
    ///
    /// `deadline_micros` and `priority` are queue-admission policy and are
    /// not consulted here (this path never queues); the concurrent loop in
    /// [`crate::serve_loop`] honors them.
    pub fn handle(&self, request: &ServeRequest) -> ServeResponse {
        ServeResponse {
            result: self.handle_request(request),
        }
    }

    /// The load-shed variant of [`Self::handle`]: validation and envelope
    /// accounting run as usual, but the GNN rung (and its simulator
    /// verification) is skipped outright — recorded as
    /// [`SkipReason::Shed`] with the observed `queue_depth` — and the
    /// request is answered from the cheap total rungs. This is what the
    /// serving loop calls for saturation overflow; it is deterministic,
    /// allocation-light, and never queues further work.
    pub fn handle_shed(&self, request: &ServeRequest, queue_depth: usize) -> ServeResponse {
        shed_response(&self.config, self.envelope(), request, queue_depth)
    }

    /// Serves a request arriving as graph text: strict limited parsing,
    /// then the ladder.
    ///
    /// # Errors
    ///
    /// [`RequestError::Parse`] with the typed, line-numbered cause; then
    /// anything the graph path rejects.
    #[deprecated(
        since = "0.2.0",
        note = "route requests through `GuardedPredictor::handle` with a typed `ServeRequest`"
    )]
    pub fn predict_text(&self, text: &str) -> Result<PredictionOutcome, RequestError> {
        let graph = qgraph::io::graph_from_str_limited(text, &self.config.limits)?;
        self.predict_graph(&graph)
    }

    /// Serves a request arriving as a pre-built graph: cap checks, envelope
    /// check, then the ladder. Never panics; the fallback rung is total, so
    /// an accepted request always yields finite in-domain parameters.
    ///
    /// # Errors
    ///
    /// [`RequestError::TooManyNodes`] / [`RequestError::TooManyEdges`] when
    /// the request exceeds the serving caps, and
    /// [`RequestError::OutOfEnvelope`] under strict envelope policy.
    #[deprecated(
        since = "0.2.0",
        note = "route requests through `GuardedPredictor::handle` with a typed `ServeRequest`"
    )]
    pub fn predict(&self, graph: &Graph) -> Result<PredictionOutcome, RequestError> {
        self.predict_graph(graph)
    }

    /// Serves a batch, isolating requests from each other: a request that
    /// somehow panics through every rung-level defense is contained by an
    /// outer `catch_unwind` and reported as [`RequestError::Internal`] for
    /// that item alone — the rest of the batch is served normally.
    #[deprecated(
        since = "0.2.0",
        note = "submit typed `ServeRequest`s through `serve_loop::ServeLoop` (or map \
                `GuardedPredictor::handle` over the batch)"
    )]
    pub fn serve_batch(&self, graphs: &[Graph]) -> Vec<Result<PredictionOutcome, RequestError>> {
        graphs
            .iter()
            .map(|g| {
                catch_unwind(AssertUnwindSafe(|| self.predict_graph(g))).unwrap_or_else(
                    |payload| Err(RequestError::Internal(panic_message(&payload))),
                )
            })
            .collect()
    }

    /// [`Self::handle`] without the response wrapper: payload dispatch,
    /// the ladder, then the rung floor. The deprecated `predict` /
    /// `predict_text` wrappers call the same `predict_graph` below with no
    /// floor, which is what keeps them bit-identical to the typed path.
    fn handle_request(
        &self,
        request: &ServeRequest,
    ) -> Result<PredictionOutcome, RequestError> {
        let outcome = match &request.payload {
            RequestPayload::Graph(graph) => self.predict_graph(graph)?,
            RequestPayload::Text(text) => {
                let graph = qgraph::io::graph_from_str_limited(text, &self.config.limits)?;
                self.predict_graph(&graph)?
            }
        };
        enforce_floor(outcome, request.rung_floor)
    }

    /// Request cap checks and envelope classification, shared by the full
    /// ladder and the shed path.
    fn admit_graph(&self, graph: &Graph) -> Result<EnvelopeStatus, RequestError> {
        admit_with(&self.config, self.envelope(), graph)
    }

    /// The full degradation ladder on a pre-built graph, fronted by the
    /// canonical-form cache when one is attached: a structurally equal
    /// graph already answered under this generation is served from memory
    /// (after the usual cap/envelope admission), and a clean GNN answer is
    /// memoized on the way out. Cache faults degrade to a normal miss.
    fn predict_graph(&self, graph: &Graph) -> Result<PredictionOutcome, RequestError> {
        let envelope = self.admit_graph(graph)?;
        if let Some((cache, generation)) = &self.cache {
            if let Some(hit) = cache.lookup(graph, *generation) {
                return Ok(hit);
            }
        }
        let outcome = self.run_ladder(graph, envelope);
        if let Some((cache, generation)) = &self.cache {
            if outcome.is_clean() {
                cache.insert(graph, *generation, &outcome);
            }
        }
        Ok(outcome)
    }

    /// The rungs themselves — total once a request is admitted.
    fn run_ladder(&self, graph: &Graph, envelope: EnvelopeStatus) -> PredictionOutcome {
        let mut skips = Vec::new();

        // Rung 1: the GNN.
        match self.try_gnn(graph, envelope) {
            Ok((params, clamped, score)) => {
                return PredictionOutcome {
                    params,
                    rung: Rung::Gnn,
                    skips,
                    envelope,
                    clamped,
                    verified_score: score,
                    cached: false,
                };
            }
            Err(reason) => skips.push(Skip {
                rung: Rung::Gnn,
                reason,
            }),
        }

        // Rung 2: nearest fixed angles.
        match self.try_fixed(graph) {
            Ok((params, score)) => {
                return PredictionOutcome {
                    params,
                    rung: Rung::FixedAngle,
                    skips,
                    envelope,
                    clamped: false,
                    verified_score: score,
                    cached: false,
                };
            }
            Err(reason) => skips.push(Skip {
                rung: Rung::FixedAngle,
                reason,
            }),
        }

        self.fallback_outcome(skips, envelope)
    }

    /// Rung 3: total fallback — envelope mean when recorded, else the
    /// deterministic default. Never verified, never refused.
    fn fallback_outcome(&self, skips: Vec<Skip>, envelope: EnvelopeStatus) -> PredictionOutcome {
        fallback_with(self.envelope(), skips, envelope)
    }

    /// The GNN rung: forward pass behind the `forward` failpoint and a
    /// panic guard, then finiteness + principal-domain guardrails, then
    /// optional simulator verification behind the `sim_eval` failpoint.
    fn try_gnn(
        &self,
        graph: &Graph,
        envelope: EnvelopeStatus,
    ) -> Result<(Params, bool, Option<f64>), SkipReason> {
        let model = match &self.model {
            Ok(m) => m,
            Err(e) => return Err(SkipReason::ModelUnavailable(e.clone())),
        };
        if let EnvelopeStatus::Violated(v) = envelope {
            return Err(SkipReason::OutOfEnvelope(v));
        }
        let (gamma, beta) = catch_unwind(AssertUnwindSafe(|| {
            match faults::fire_may_panic(faults::FORWARD) {
                // Any non-panic injection poisons the output, exercising
                // the finiteness guardrail below.
                Some(_) => (f64::NAN, f64::NAN),
                None => model.predict(graph),
            }
        }))
        .map_err(|_| SkipReason::Panicked)?;
        if !gamma.is_finite() || !beta.is_finite() {
            return Err(SkipReason::NonFinite { gamma, beta });
        }
        let (gamma, beta, clamped) = clamp_principal(gamma, beta);
        let params = Params::new(vec![gamma], vec![beta]);
        let score = self.verify(graph, &params)?;
        Ok((params, clamped, score))
    }

    /// The fixed-angle rung: nearest tree-subgraph angles, verified like a
    /// GNN prediction.
    fn try_fixed(&self, graph: &Graph) -> Result<(Params, Option<f64>), SkipReason> {
        let fa = fixed_angle::nearest_for_graph(graph).ok_or(SkipReason::NotApplicable)?;
        let score = self.verify(graph, &fa.params)?;
        Ok((fa.params, score))
    }

    /// Simulator verification of a candidate: `Ok(None)` when disabled or
    /// the graph is too large to simulate, `Ok(Some(score))` on a finite
    /// expectation, and a [`SkipReason`] (degrading the rung) on a
    /// non-finite score or a contained panic.
    fn verify(&self, graph: &Graph, params: &Params) -> Result<Option<f64>, SkipReason> {
        if self.config.verify_max_nodes == 0 || graph.n() > self.config.verify_max_nodes {
            return Ok(None);
        }
        let score = catch_unwind(AssertUnwindSafe(|| {
            match faults::fire_may_panic(faults::SIM_EVAL) {
                Some(FaultAction::Nan) => f64::NAN,
                Some(_) => f64::NAN,
                None => {
                    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(graph));
                    // sim_threads = 0 resolves to the serial executor, so
                    // this is bit-identical to the one-shot
                    // `QaoaCircuit::expectation` it replaces.
                    Evaluator::with_sim_threads(&circuit, self.config.sim_threads)
                        .expectation_in_place(params)
                }
            }
        }))
        .map_err(|_| SkipReason::Panicked)?;
        if !score.is_finite() {
            return Err(SkipReason::VerificationFailed);
        }
        Ok(Some(score))
    }
}

/// Clamps `(γ, β)` into the principal domain `γ ∈ [0, 2π]`, `β ∈ [0, π/2]`,
/// reporting whether anything moved. Exact no-op (same bits) for in-domain
/// inputs, which is what keeps guarded serving bit-identical to the raw
/// prediction path.
fn clamp_principal(gamma: f64, beta: f64) -> (f64, f64, bool) {
    let g = gamma.clamp(0.0, std::f64::consts::TAU);
    let b = beta.clamp(0.0, std::f64::consts::FRAC_PI_2);
    (g, b, g != gamma || b != beta)
}

/// Applies a request's quality floor to a served outcome.
fn enforce_floor(
    outcome: PredictionOutcome,
    floor: Option<Rung>,
) -> Result<PredictionOutcome, RequestError> {
    match floor {
        Some(floor) if outcome.rung.quality() < floor.quality() => Err(RequestError::BelowFloor {
            served: outcome.rung,
            floor,
        }),
        _ => Ok(outcome),
    }
}

/// Request cap checks and envelope classification against a policy + an
/// optional envelope — no model required, so the serving loop's admission
/// path can run it on the caller thread.
fn admit_with(
    config: &ServeConfig,
    envelope: Option<&TrainingEnvelope>,
    graph: &Graph,
) -> Result<EnvelopeStatus, RequestError> {
    if graph.n() > config.limits.max_nodes {
        return Err(RequestError::TooManyNodes {
            n: graph.n(),
            cap: config.limits.max_nodes,
        });
    }
    if graph.m() > config.limits.max_edges {
        return Err(RequestError::TooManyEdges {
            m: graph.m(),
            cap: config.limits.max_edges,
        });
    }
    match envelope {
        None => Ok(EnvelopeStatus::Unknown),
        Some(env) => match env.check(graph) {
            Ok(()) => Ok(EnvelopeStatus::InEnvelope),
            Err(v) if config.strict_envelope => Err(RequestError::OutOfEnvelope(v)),
            Err(v) => Ok(EnvelopeStatus::Violated(v)),
        },
    }
}

/// The total fallback rung as a free function (see
/// [`GuardedPredictor::handle`] rung 3).
fn fallback_with(
    envelope: Option<&TrainingEnvelope>,
    skips: Vec<Skip>,
    status: EnvelopeStatus,
) -> PredictionOutcome {
    let (gamma, beta) = envelope
        .map(TrainingEnvelope::mean_label)
        .unwrap_or_else(default_init);
    let (gamma, beta, clamped) = clamp_principal(gamma, beta);
    PredictionOutcome {
        params: Params::new(vec![gamma], vec![beta]),
        rung: Rung::Fallback,
        skips,
        envelope: status,
        clamped,
        verified_score: None,
        cached: false,
    }
}

/// The model-free shed ladder backing [`GuardedPredictor::handle_shed`]:
/// validation and envelope accounting run as usual, the GNN rung is
/// recorded as [`SkipReason::Shed`], and the answer comes from the cheap
/// total rungs (fixed angles unverified — the simulator is exactly the
/// cost shedding avoids). Needs only the policy and the envelope, not the
/// model, so the serving loop can shed on any thread without touching a
/// predictor (whose autodiff tape is single-threaded).
pub(crate) fn shed_response(
    config: &ServeConfig,
    envelope: Option<&TrainingEnvelope>,
    request: &ServeRequest,
    queue_depth: usize,
) -> ServeResponse {
    model_free_response(
        config,
        envelope,
        request,
        SkipReason::Shed { queue_depth },
    )
}

/// The general model-free ladder: validation and envelope accounting run
/// as usual, the GNN rung is skipped with the caller's `gnn_skip` reason
/// (load shed, or an open circuit breaker), and the answer comes from the
/// cheap total rungs. Backs both [`GuardedPredictor::handle_shed`] and the
/// serve loop's breaker-open path.
pub(crate) fn model_free_response(
    config: &ServeConfig,
    envelope: Option<&TrainingEnvelope>,
    request: &ServeRequest,
    gnn_skip: SkipReason,
) -> ServeResponse {
    let result = (|| {
        let graph = match &request.payload {
            RequestPayload::Graph(graph) => std::borrow::Cow::Borrowed(graph),
            RequestPayload::Text(text) => std::borrow::Cow::Owned(
                qgraph::io::graph_from_str_limited(text, &config.limits)?,
            ),
        };
        let status = admit_with(config, envelope, &graph)?;
        let mut skips = vec![Skip {
            rung: Rung::Gnn,
            reason: gnn_skip,
        }];
        let outcome = if let Some(fa) = fixed_angle::nearest_for_graph(&graph) {
            PredictionOutcome {
                params: fa.params,
                rung: Rung::FixedAngle,
                skips,
                envelope: status,
                clamped: false,
                verified_score: None,
                cached: false,
            }
        } else {
            skips.push(Skip {
                rung: Rung::FixedAngle,
                reason: SkipReason::NotApplicable,
            });
            fallback_with(envelope, skips, status)
        };
        enforce_floor(outcome, request.rung_floor)
    })();
    ServeResponse { result }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the legacy wrapper trio is exercised on purpose

    use super::*;
    use gnn::train::TrainHistory;
    use gnn::{GnnKind, GnnModel};
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    use crate::dataset::LabelReport;
    use crate::pipeline::PipelineConfig;

    fn tiny_artifact(envelope: Option<TrainingEnvelope>) -> RunArtifact {
        let mut rng = StdRng::seed_from_u64(4001);
        let config = gnn::ModelConfig {
            hidden_dim: 4,
            ..gnn::ModelConfig::default()
        };
        let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
        RunArtifact {
            config: PipelineConfig::quick(),
            weights: model.export_weights(),
            history: TrainHistory::default(),
            label_report: LabelReport::clean(1),
            dataset_fingerprint: 0,
            envelope,
        }
    }

    fn wide_envelope() -> TrainingEnvelope {
        TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }
    }

    #[test]
    fn clean_request_is_bit_identical_to_raw_predict() {
        let artifact = tiny_artifact(Some(wide_envelope()));
        let raw = artifact.build_model().unwrap();
        let served = GuardedPredictor::new(artifact, ServeConfig::default());
        let g = Graph::cycle(8).unwrap();
        let (rg, rb) = raw.predict(&g);
        let outcome = served.predict(&g).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.envelope, EnvelopeStatus::InEnvelope);
        let (sg, sb) = outcome.angles();
        assert_eq!(rg.to_bits(), sg.to_bits());
        assert_eq!(rb.to_bits(), sb.to_bits());
        assert!(outcome.verified_score.is_some());
    }

    #[test]
    fn handle_graph_payload_matches_legacy_predict_exactly() {
        let served =
            GuardedPredictor::new(tiny_artifact(Some(wide_envelope())), ServeConfig::default());
        let g = Graph::cycle(8).unwrap();
        let legacy = served.predict(&g).unwrap();
        let typed = served.handle(&ServeRequest::from_graph(g));
        assert_eq!(typed.result.unwrap(), legacy);
    }

    #[test]
    fn handle_text_payload_matches_legacy_predict_text_exactly() {
        let served =
            GuardedPredictor::new(tiny_artifact(Some(wide_envelope())), ServeConfig::default());
        let g = Graph::cycle(6).unwrap();
        let text = qgraph::io::graph_to_string(&g);
        let legacy = served.predict_text(&text).unwrap();
        let typed = served.handle(&ServeRequest::from_text(text));
        assert_eq!(typed.result.unwrap(), legacy);
        // Malformed text is the same typed rejection on both paths.
        match served
            .handle(&ServeRequest::from_text("n 3\ne 0 1 nan\n"))
            .result
        {
            Err(RequestError::Parse(e)) => assert_eq!(e.line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn rung_floor_turns_degraded_answers_into_typed_refusals() {
        let served =
            GuardedPredictor::new(tiny_artifact(Some(wide_envelope())), ServeConfig::default());
        let g = Graph::cycle(8).unwrap();
        // Forced degradation + a Gnn floor: refusal naming both rungs.
        let _fault = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
        let request = ServeRequest::from_graph(g.clone()).with_rung_floor(Rung::Gnn);
        match served.handle(&request).result {
            Err(RequestError::BelowFloor { served, floor }) => {
                assert_eq!(served, Rung::FixedAngle);
                assert_eq!(floor, Rung::Gnn);
            }
            other => panic!("expected BelowFloor, got {other:?}"),
        }
        drop(_fault);
        // A FixedAngle floor accepts a fixed-angle answer.
        let _fault = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
        let request = ServeRequest::from_graph(g).with_rung_floor(Rung::FixedAngle);
        let outcome = served.handle(&request).result.unwrap();
        assert_eq!(outcome.rung, Rung::FixedAngle);
    }

    #[test]
    fn shed_path_skips_gnn_and_serves_fixed_angles_unverified() {
        let served =
            GuardedPredictor::new(tiny_artifact(Some(wide_envelope())), ServeConfig::default());
        let g = Graph::cycle(8).unwrap();
        let response = served.handle_shed(&ServeRequest::from_graph(g), 37);
        assert!(response.was_shed());
        let outcome = response.result.unwrap();
        assert_eq!(outcome.rung, Rung::FixedAngle);
        assert_eq!(
            outcome.skips[0],
            Skip {
                rung: Rung::Gnn,
                reason: SkipReason::Shed { queue_depth: 37 },
            }
        );
        assert_eq!(outcome.verified_score, None, "shed answers skip the simulator");
        let (gamma, beta) = outcome.angles();
        assert!(gamma.is_finite() && beta.is_finite());
        // Edgeless: the shed ladder still answers, on the total rung.
        let response = served.handle_shed(&ServeRequest::from_graph(Graph::empty(4).unwrap()), 2);
        let outcome = response.result.unwrap();
        assert_eq!(outcome.rung, Rung::Fallback);
        assert!(outcome.was_shed());
    }

    #[test]
    fn text_request_round_trips_through_strict_parser() {
        let served =
            GuardedPredictor::new(tiny_artifact(Some(wide_envelope())), ServeConfig::default());
        let g = Graph::cycle(6).unwrap();
        let text = qgraph::io::graph_to_string(&g);
        let from_text = served.predict_text(&text).unwrap();
        let from_graph = served.predict(&g).unwrap();
        assert_eq!(from_text, from_graph);
        // Malformed text is a typed rejection, not a panic or a fallback.
        match served.predict_text("n 3\ne 0 1 nan\n") {
            Err(RequestError::Parse(e)) => assert_eq!(e.line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_envelope_degrades_and_strict_rejects() {
        let narrow = TrainingEnvelope {
            max_nodes: 6,
            ..wide_envelope()
        };
        let big = Graph::cycle(10).unwrap();
        let served =
            GuardedPredictor::new(tiny_artifact(Some(narrow.clone())), ServeConfig::default());
        let outcome = served.predict(&big).unwrap();
        assert_ne!(outcome.rung, Rung::Gnn);
        assert!(matches!(outcome.envelope, EnvelopeStatus::Violated(_)));
        assert!(outcome
            .skips
            .iter()
            .any(|s| s.rung == Rung::Gnn && matches!(s.reason, SkipReason::OutOfEnvelope(_))));

        let strict = GuardedPredictor::new(
            tiny_artifact(Some(narrow)),
            ServeConfig::default().with_strict_envelope(true),
        );
        match strict.predict(&big) {
            Err(RequestError::OutOfEnvelope(EnvelopeViolation::NodeCount { n: 10, .. })) => {}
            other => panic!("expected strict rejection, got {other:?}"),
        }
    }

    #[test]
    fn pre_envelope_artifact_serves_with_unknown_status() {
        let served = GuardedPredictor::new(tiny_artifact(None), ServeConfig::default());
        let outcome = served.predict(&Graph::cycle(5).unwrap()).unwrap();
        assert_eq!(outcome.rung, Rung::Gnn);
        assert_eq!(outcome.envelope, EnvelopeStatus::Unknown);
        assert!(outcome.summary().contains("envelope unknown"));
    }

    #[test]
    fn oversized_graph_request_is_rejected_before_any_work() {
        let served = GuardedPredictor::new(
            tiny_artifact(None),
            ServeConfig::default().with_limits(ParseLimits {
                max_nodes: 8,
                ..ParseLimits::serving()
            }),
        );
        match served.predict(&Graph::cycle(9).unwrap()) {
            Err(RequestError::TooManyNodes { n: 9, cap: 8 }) => {}
            other => panic!("expected TooManyNodes, got {other:?}"),
        }
    }

    #[test]
    fn fallback_uses_envelope_mean_then_default() {
        // Edgeless graph: fixed angles do not apply, so a non-finite GNN
        // output lands on the fallback rung.
        let g = Graph::empty(4).unwrap();
        let served =
            GuardedPredictor::new(tiny_artifact(Some(wide_envelope())), ServeConfig::default());
        let _fault = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
        let outcome = served.predict(&g).unwrap();
        assert_eq!(outcome.rung, Rung::Fallback);
        assert_eq!(outcome.angles(), (1.0, 0.5)); // the envelope mean
        assert_eq!(outcome.skips.len(), 2);
        drop(_fault);

        let bare = GuardedPredictor::new(tiny_artifact(None), ServeConfig::default());
        let _fault = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
        let outcome = bare.predict(&g).unwrap();
        assert_eq!(outcome.rung, Rung::Fallback);
        assert_eq!(outcome.angles(), default_init());
    }

    #[test]
    fn clamp_is_a_bitwise_no_op_in_domain() {
        let (g, b, moved) = clamp_principal(1.25, 0.5);
        assert!(!moved);
        assert_eq!(g.to_bits(), 1.25f64.to_bits());
        assert_eq!(b.to_bits(), 0.5f64.to_bits());
        let (g, b, moved) = clamp_principal(-0.1, 2.0);
        assert!(moved);
        assert_eq!(g, 0.0);
        assert_eq!(b, std::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn rung_quality_orders_the_ladder() {
        assert!(Rung::Gnn.quality() > Rung::FixedAngle.quality());
        assert!(Rung::FixedAngle.quality() > Rung::Fallback.quality());
    }

    #[test]
    fn request_builders_and_error_sources() {
        let request = ServeRequest::from_text("n 2\ne 0 1\n")
            .with_priority(Priority::High)
            .with_deadline_micros(250)
            .with_rung_floor(Rung::FixedAngle);
        assert_eq!(request.priority, Priority::High);
        assert_eq!(request.deadline_micros, Some(250));
        assert_eq!(request.rung_floor, Some(Rung::FixedAngle));

        // RequestError::source chains to the typed parse cause.
        let served = GuardedPredictor::new(tiny_artifact(None), ServeConfig::default());
        let err = served
            .handle(&ServeRequest::from_text("bogus\n"))
            .result
            .unwrap_err();
        let source = std::error::Error::source(&err).expect("parse source");
        assert!(source.to_string().contains("line 1"), "got: {source}");
    }

    #[test]
    fn serve_config_env_overrides_apply() {
        // Serialized with other fault/env tests via the fault guard lock.
        let _guard = faults::armed("serve_config_env_test", FaultAction::Error, 1);
        std::env::set_var("QAOA_GNN_SERVE_STRICT", "1");
        std::env::set_var("QAOA_GNN_SERVE_VERIFY_MAX_NODES", "3");
        std::env::set_var("QAOA_GNN_SERVE_MAX_NODES", "11");
        let config = ServeConfig::from_env();
        std::env::remove_var("QAOA_GNN_SERVE_STRICT");
        std::env::remove_var("QAOA_GNN_SERVE_VERIFY_MAX_NODES");
        std::env::remove_var("QAOA_GNN_SERVE_MAX_NODES");
        assert!(config.strict_envelope);
        assert_eq!(config.verify_max_nodes, 3);
        assert_eq!(config.limits.max_nodes, 11);
        assert!(!ServeConfig::from_env().strict_envelope);
    }
}
