use std::error::Error;
use std::fmt;

/// What went wrong at one line of graph text — the typed payload of a
/// [`ParseError`]. Structural problems (self-loops, duplicate edges,
/// non-finite weights, out-of-range endpoints) are first-class variants so
/// a serving layer can report *why* an input was rejected without string
/// matching.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A token was missing or failed to lex (`message` describes it).
    Syntax(String),
    /// The `n` header line was missing entirely.
    MissingHeader,
    /// A second `n` line appeared.
    DuplicateHeader,
    /// An unknown record type opened the line.
    UnknownRecord(String),
    /// An edge weight parsed but is NaN or ±∞.
    NonFiniteWeight(f64),
    /// An edge connected a node to itself.
    SelfLoop(usize),
    /// The same unordered pair appeared twice.
    DuplicateEdge(usize, usize),
    /// An edge endpoint referenced a node `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Declared node count.
        n: usize,
    },
    /// The declared node count exceeds the caller's cap.
    TooManyNodes {
        /// Declared node count.
        n: usize,
        /// Enforced cap.
        cap: usize,
    },
    /// The edge list exceeds the caller's cap.
    TooManyEdges {
        /// Number of edges seen so far.
        m: usize,
        /// Enforced cap.
        cap: usize,
    },
    /// The raw input is larger than the caller's byte cap.
    InputTooLarge {
        /// Input length in bytes.
        bytes: usize,
        /// Enforced cap.
        cap: usize,
    },
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::Syntax(msg) => write!(f, "{msg}"),
            ParseErrorKind::MissingHeader => write!(f, "missing 'n' line"),
            ParseErrorKind::DuplicateHeader => write!(f, "duplicate 'n' line"),
            ParseErrorKind::UnknownRecord(r) => write!(f, "unknown record type '{r}'"),
            ParseErrorKind::NonFiniteWeight(w) => {
                write!(f, "edge weight {w} is not finite")
            }
            ParseErrorKind::SelfLoop(v) => write!(f, "self loop at node {v}"),
            ParseErrorKind::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            ParseErrorKind::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            ParseErrorKind::TooManyNodes { n, cap } => {
                write!(f, "node count {n} exceeds cap {cap}")
            }
            ParseErrorKind::TooManyEdges { m, cap } => {
                write!(f, "edge count {m} exceeds cap {cap}")
            }
            ParseErrorKind::InputTooLarge { bytes, cap } => {
                write!(f, "input of {bytes} bytes exceeds cap {cap}")
            }
        }
    }
}

/// A graph-text parse failure: a typed [`ParseErrorKind`] anchored to a
/// 1-based line number (`0` when the failure is about the file as a whole,
/// e.g. a missing header or an oversized input).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the failure; `0` for whole-file conditions.
    pub line: usize,
    /// What went wrong there.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Creates a parse error at `line`.
    pub fn new(line: usize, kind: ParseErrorKind) -> Self {
        ParseError { line, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.kind)
    }
}

impl Error for ParseError {}

impl From<ParseError> for GraphError {
    /// Collapses a typed parse error into the legacy [`GraphError::Parse`]
    /// shape for callers that funnel all graph failures into one enum.
    fn from(e: ParseError) -> Self {
        GraphError::Parse {
            line: e.line,
            message: e.kind.to_string(),
        }
    }
}

/// Errors produced when constructing or parsing graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge connected a node to itself; simple graphs forbid this.
    SelfLoop(usize),
    /// The same unordered pair appeared twice in the edge list.
    DuplicateEdge(usize, usize),
    /// A graph with zero nodes was requested where at least one is required.
    EmptyGraph,
    /// A d-regular graph on n nodes requires `d < n` and `n * d` even.
    InvalidRegular {
        /// Requested number of nodes.
        n: usize,
        /// Requested degree.
        degree: usize,
    },
    /// An edge probability outside `[0, 1]` was supplied.
    InvalidProbability(f64),
    /// A non-finite edge weight was supplied.
    InvalidWeight(f64),
    /// A dimension argument was invalid for the requested topology
    /// (for example a grid with a zero side).
    InvalidDimension(String),
    /// A graph file or dataset record failed to parse.
    Parse {
        /// 1-based line number of the failure, when known.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::EmptyGraph => write!(f, "graph must have at least one node"),
            GraphError::InvalidRegular { n, degree } => write!(
                f,
                "no simple {degree}-regular graph on {n} nodes (need degree < n and n*degree even)"
            ),
            GraphError::InvalidProbability(p) => {
                write!(f, "edge probability {p} not in [0, 1]")
            }
            GraphError::InvalidWeight(w) => write!(f, "edge weight {w} is not finite"),
            GraphError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::SelfLoop(3);
        assert_eq!(e.to_string(), "self loop at node 3");
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("node 9"));
        let e = GraphError::InvalidRegular { n: 5, degree: 3 };
        assert!(e.to_string().contains("5 nodes"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
