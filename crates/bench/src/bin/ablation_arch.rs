//! §4.1 ablation: sensitivity to GNN depth and embedding width.
//!
//! The paper fixes 2 layers and embedding 32; this sweep shows how the
//! choice affects test regression error and downstream AR improvement for
//! the best-performing architecture (GIN).

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::{GnnKind, ModelConfig};
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn_bench::{f2, f4, label_dataset, print_table, write_csv};

fn main() {
    let base = PipelineConfig::from_env();
    println!("labeling {} graphs once...", base.dataset.count);
    let dataset = label_dataset(&base);

    let mut rows = Vec::new();
    for layers in [1usize, 2, 3] {
        for hidden in [16usize, 32, 64] {
            let config = base.clone().with_model(ModelConfig {
                layers,
                hidden_dim: hidden,
                ..ModelConfig::default()
            });
            // Save an artifact only for the paper's working point (2
            // layers, width 32) when QAOA_GNN_ARTIFACT is set.
            let config = if layers == 2 && hidden == 32 {
                config.with_artifact_path(base.artifact_path.clone())
            } else {
                config.with_artifact_path(None)
            };
            let mut rng = StdRng::seed_from_u64(base.seed ^ 0xa6c4);
            let p = Pipeline::run_on_dataset(GnnKind::Gin, dataset.clone(), &config, &mut rng);
            if let Some(path) = &config.artifact_path {
                println!("saved run artifact -> {}", path.display());
            }
            rows.push(vec![
                layers.to_string(),
                hidden.to_string(),
                p.model.num_parameters().to_string(),
                f4(p.history.final_loss().unwrap_or(f64::NAN)),
                f4(p.test_mse),
                f2(p.report.mean_improvement),
                f2(p.report.std_improvement),
            ]);
            println!(
                "layers {layers} hidden {hidden}: improvement {} pts",
                f2(p.report.mean_improvement)
            );
        }
    }
    let header = [
        "layers",
        "hidden_dim",
        "parameters",
        "train_loss",
        "test_mse",
        "improvement_pts",
        "improvement_std",
    ];
    print_table("Architecture ablation (GIN)", &header, &rows);
    let path = write_csv("ablation_arch.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());

    // Readout sweep (Eq. 9 leaves READOUT open; the paper uses mean).
    let mut rows = Vec::new();
    for readout in [gnn::Readout::Mean, gnn::Readout::Sum, gnn::Readout::Max] {
        // The depth/width sweep already saved the working-point artifact;
        // don't let readout variants overwrite it.
        let config = base
            .clone()
            .with_artifact_path(None)
            .with_model(ModelConfig {
                readout,
                ..ModelConfig::default()
            });
        let mut rng = StdRng::seed_from_u64(base.seed ^ 0xa6c4);
        let p = Pipeline::run_on_dataset(GnnKind::Gin, dataset.clone(), &config, &mut rng);
        rows.push(vec![
            format!("{readout:?}"),
            f4(p.test_mse),
            f2(p.report.mean_improvement),
            f2(p.report.std_improvement),
            f2(p.report.win_rate() * 100.0),
        ]);
    }
    let header = ["readout", "test_mse", "improvement_pts", "std", "win_rate_%"];
    print_table("Readout ablation (GIN)", &header, &rows);
    let path = write_csv("ablation_readout.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
