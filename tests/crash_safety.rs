//! Crash-safety acceptance suite for training checkpoints and atomic
//! artifact writes (`core::store::TrainCheckpoint`, `RunArtifact::save`).
//!
//! The contract under test:
//!
//! 1. **Atomic saves never destroy the previous file** — a save killed
//!    between the tmp-file flush and the rename (the `artifact_save` /
//!    `checkpoint_write` failpoints) leaves the old bytes loadable and no
//!    tmp debris behind.
//! 2. **Torn checkpoints never panic** — any truncation and any
//!    single-byte corruption of a training checkpoint loads as a typed
//!    [`ArtifactError`], or (when the corruption hits redundant bytes) as
//!    a checkpoint equal to the original. Fuzzed with qcheck.
//! 3. **Resume degrades, never corrupts** — a pipeline pointed at a
//!    corrupt checkpoint falls back to a fresh training run and still
//!    writes the byte-identical artifact; a pipeline pointed at a *valid*
//!    checkpoint from a different configuration refuses with the typed
//!    [`PipelineError::CheckpointMismatch`] instead of silently mixing
//!    runs.
//! 4. **Completed runs replay for free** — rerunning a finished
//!    checkpointed pipeline resumes from the `done` checkpoint without
//!    retraining (proven by arming `checkpoint_write` to error: a retrain
//!    would trip it) and leaves the artifact bytes untouched.
//!
//! The process-level counterpart — real SIGKILLs against a live pipeline
//! subprocess — lives in the `crash_resume` bench bin; this suite covers
//! the same protocol windows in-process where assertions can be exact.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel, ModelConfig};
use qaoa_gnn::dataset::{LabelConfig, LabelReport};
use qaoa_gnn::faults::{self, FaultAction};
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig, PipelineError};
use qaoa_gnn::store::{train_checkpoint_path, TrainCheckpoint};
use qaoa_gnn::RunArtifact;
use qgraph::generate::DatasetSpec;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qaoa_gnn_crash_tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A seconds-scale checkpointed pipeline configuration: labels journal
/// into `dir`, training checkpoints land next to the journal, and the
/// artifact is written into the same directory.
fn checkpointed_config(dir: &Path, seed: u64) -> PipelineConfig {
    PipelineConfig {
        dataset: DatasetSpec::with_count(24),
        labeling: LabelConfig::quick(40),
        training: gnn::train::TrainConfig::quick(6),
        test_size: 6,
        ..PipelineConfig::paper_scale()
    }
    .with_seed(seed)
    .with_checkpoint_dir(Some(dir.to_path_buf()))
    .with_artifact_path(Some(dir.join("artifact.json")))
}

fn run_checkpointed(dir: &Path, seed: u64) -> (Pipeline, PipelineConfig) {
    let config = checkpointed_config(dir, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let pipeline = Pipeline::run(GnnKind::Gcn, &config, &mut rng);
    (pipeline, config)
}

/// An artifact that is cheap to build (no training) for the atomic-save
/// test: a freshly initialized model plus empty history.
fn untrained_artifact(seed: u64) -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = ModelConfig {
        hidden_dim: 4,
        ..ModelConfig::default()
    };
    let model = GnnModel::new(GnnKind::Gin, config, &mut rng);
    RunArtifact {
        config: checkpointed_config(Path::new("unused"), seed),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(3),
        dataset_fingerprint: 0x9e37_79b9_7f4a_7c15 ^ seed,
        envelope: None,
    }
}

/// One completed checkpointed run, built once and shared by the fuzz
/// properties: the checkpoint file's bytes plus its decoded form.
fn fuzz_fixture() -> &'static (Vec<u8>, TrainCheckpoint) {
    static FIXTURE: OnceLock<(Vec<u8>, TrainCheckpoint)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = temp_dir("fuzz_fixture");
        run_checkpointed(&dir, 77);
        let path = train_checkpoint_path(&dir, GnnKind::Gcn);
        let bytes = fs::read(&path).unwrap();
        let checkpoint = TrainCheckpoint::load(&path).unwrap();
        (bytes, checkpoint)
    })
}

/// Acceptance 1 (artifact): a save that dies between flushing the tmp
/// file and the rename leaves the previous artifact bytes on disk,
/// loadable, with no tmp debris. A clean retry then succeeds.
#[test]
fn killed_artifact_save_leaves_previous_artifact_loadable() {
    let dir = temp_dir("killed_artifact_save");
    let path = dir.join("artifact.json");
    let old = untrained_artifact(1);
    old.save(&path).unwrap();
    let old_bytes = fs::read(&path).unwrap();

    let new = untrained_artifact(2);
    {
        let _guard = faults::armed(faults::ARTIFACT_SAVE, FaultAction::Error, 1);
        let err = new.save(&path).expect_err("armed save must fail");
        assert!(err.to_string().contains("fault injected"), "{err}");
    }
    assert_eq!(fs::read(&path).unwrap(), old_bytes, "old artifact moved");
    assert_eq!(RunArtifact::load(&path).unwrap(), old);
    assert!(
        !dir.join("artifact.json.tmp").exists(),
        "tmp debris left behind"
    );

    new.save(&path).unwrap();
    assert_eq!(RunArtifact::load(&path).unwrap(), new);
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance 1 (checkpoint): same protocol window, same guarantee, for
/// the training checkpoint file.
#[test]
fn killed_checkpoint_write_leaves_previous_checkpoint_loadable() {
    let dir = temp_dir("killed_checkpoint_write");
    run_checkpointed(&dir, 11);
    let path = train_checkpoint_path(&dir, GnnKind::Gcn);
    let old_bytes = fs::read(&path).unwrap();
    let old = TrainCheckpoint::load(&path).unwrap();

    let mut tampered = old.clone();
    tampered.identity ^= 0xdead_beef;
    {
        let _guard = faults::armed(faults::CHECKPOINT_WRITE, FaultAction::Error, 1);
        let err = tampered.save(&path).expect_err("armed save must fail");
        assert!(err.to_string().contains("fault injected"), "{err}");
    }
    assert_eq!(fs::read(&path).unwrap(), old_bytes, "old checkpoint moved");
    assert_eq!(TrainCheckpoint::load(&path).unwrap(), old);
    assert!(
        !dir.join("train.gcn.ckpt.json.tmp").exists(),
        "tmp debris left behind"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance 2 (truncation): every prefix-truncation of a valid training
/// checkpoint fails with a typed error, never a panic. (Cutting only
/// trailing whitespace may still load — then it must decode to the
/// identical checkpoint.)
#[test]
fn every_checkpoint_truncation_fails_typed() {
    let (bytes, original) = fuzz_fixture();
    let dir = temp_dir("ckpt_truncation");
    let cut = dir.join("cut.ckpt.json");
    // Dense sweep near both ends, strided through the middle.
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(997));
    cuts.extend(bytes.len().saturating_sub(32)..bytes.len());
    for len in cuts {
        fs::write(&cut, &bytes[..len]).unwrap();
        match TrainCheckpoint::load(&cut) {
            Ok(back) => {
                assert!(
                    bytes[len..].iter().all(u8::is_ascii_whitespace),
                    "truncation to {len} of {} cut content yet loaded",
                    bytes.len()
                );
                assert_eq!(&back, original);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance 3 (fallback): a pipeline whose checkpoint directory holds a
/// torn or garbage training checkpoint falls back to a fresh training run
/// — and because training is deterministic, the artifact bytes do not
/// move. The healthy checkpoint is rewritten along the way.
#[test]
fn corrupted_checkpoint_falls_back_to_fresh_start() {
    let dir = temp_dir("corrupt_fallback");
    let (_, config) = run_checkpointed(&dir, 21);
    let path = train_checkpoint_path(&dir, GnnKind::Gcn);
    let good_bytes = fs::read(&path).unwrap();
    let identity = TrainCheckpoint::load(&path).unwrap().identity;
    let artifact_bytes = fs::read(dir.join("artifact.json")).unwrap();

    // A torn tail, a checksum-breaking flip, and outright garbage.
    let mut flipped = good_bytes.clone();
    let state_start = good_bytes
        .windows(7)
        .position(|w| w == b"\"state\"")
        .unwrap();
    flipped[state_start + 64] ^= 0x20;
    let corruptions: [&[u8]; 3] = [
        &good_bytes[..good_bytes.len() / 2],
        &flipped,
        b"garbage\n",
    ];
    for (i, corrupt) in corruptions.iter().enumerate() {
        fs::write(&path, corrupt).unwrap();
        TrainCheckpoint::load(&path).expect_err("corruption must not load");
        let mut rng = StdRng::seed_from_u64(21);
        Pipeline::try_run(GnnKind::Gcn, &config, &mut rng)
            .unwrap_or_else(|e| panic!("corruption {i}: fallback run failed: {e}"));
        assert_eq!(
            fs::read(dir.join("artifact.json")).unwrap(),
            artifact_bytes,
            "corruption {i}: artifact bytes moved"
        );
        let healed = TrainCheckpoint::load(&path)
            .unwrap_or_else(|e| panic!("corruption {i}: checkpoint not healed: {e}"));
        assert_eq!(healed.identity, identity, "corruption {i}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance 4: rerunning a completed checkpointed pipeline replays the
/// `done` checkpoint instead of retraining. The proof is a tripwire: with
/// `checkpoint_write` armed to error, any fresh training epoch would
/// abort the run — the rerun must succeed without touching it, and the
/// artifact bytes must not move.
#[test]
fn completed_run_resumes_without_retraining() {
    let dir = temp_dir("done_replay");
    let (first, config) = run_checkpointed(&dir, 31);
    let artifact_bytes = fs::read(dir.join("artifact.json")).unwrap();

    let _guard = faults::armed(faults::CHECKPOINT_WRITE, FaultAction::Error, u64::MAX);
    let mut rng = StdRng::seed_from_u64(31);
    let again = Pipeline::try_run(GnnKind::Gcn, &config, &mut rng)
        .expect("done-checkpoint replay must not retrain (tripwire fired)");
    assert_eq!(again.history, first.history);
    assert_eq!(again.report, first.report);
    assert_eq!(
        fs::read(dir.join("artifact.json")).unwrap(),
        artifact_bytes,
        "artifact rewritten on replay"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance 3 (refusal): a *valid* checkpoint from a different training
/// configuration is never silently reused — the pipeline returns the
/// typed [`PipelineError::CheckpointMismatch`] naming both identities.
#[test]
fn changed_training_config_refuses_with_typed_mismatch() {
    let dir = temp_dir("config_mismatch");
    run_checkpointed(&dir, 41);

    // Same seed and dataset (the label journal replays cleanly); more
    // epochs — the training identity must not match.
    let longer = PipelineConfig {
        training: gnn::train::TrainConfig::quick(9),
        ..checkpointed_config(&dir, 41)
    };
    let mut rng = StdRng::seed_from_u64(41);
    match Pipeline::try_run(GnnKind::Gcn, &longer, &mut rng) {
        Err(PipelineError::CheckpointMismatch {
            path,
            expected,
            found,
        }) => {
            assert_eq!(path, train_checkpoint_path(&dir, GnnKind::Gcn));
            assert_ne!(expected, found);
            let msg = PipelineError::CheckpointMismatch {
                path,
                expected,
                found,
            }
            .to_string();
            assert!(msg.contains("refusing to resume"), "{msg}");
        }
        other => panic!("expected CheckpointMismatch, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

qcheck::properties! {
    cases = 200;

    /// Acceptance 2 (fuzz): overwriting any single byte of a training
    /// checkpoint with any value either fails typed or decodes to the
    /// original checkpoint (the byte was redundant — whitespace or an
    /// equivalent encoding). Never a panic, never a silently different
    /// training state.
    fn checkpoint_single_byte_corruption_is_detected_or_harmless(
        pos_raw in qcheck::any_u64(),
        byte_raw in 0u64..=255
    ) {
        let (bytes, original) = fuzz_fixture();
        let dir = temp_dir(&format!("ckpt_fuzz_{}", pos_raw % 8191));
        let path = dir.join("c.ckpt.json");
        let mut mutated = bytes.clone();
        let pos = (pos_raw % mutated.len() as u64) as usize;
        let byte = byte_raw as u8;
        qcheck::prop_assume!(mutated[pos] != byte);
        mutated[pos] = byte;
        fs::write(&path, &mutated).unwrap();
        match TrainCheckpoint::load(&path) {
            Ok(back) => qcheck::prop_assert_eq!(&back, original),
            Err(e) => qcheck::prop_assert!(!e.to_string().is_empty()),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping a single bit inside the state section specifically must be
    /// caught by the section checksum (or fail to parse) — optimizer
    /// moments and RNG position are the payload whose silent corruption
    /// would diverge a resumed run from the uninterrupted one.
    fn state_section_bitflip_never_survives(
        pos_raw in qcheck::any_u64(),
        bit in 0u64..=7
    ) {
        let (bytes, original) = fuzz_fixture();
        let dir = temp_dir(&format!("ckpt_bitflip_{}", pos_raw % 8191));
        let path = dir.join("c.ckpt.json");
        let start = bytes.windows(7).position(|w| w == b"\"state\"").unwrap();
        let end = bytes.windows(11).position(|w| w == b"\"checksums\"").unwrap();
        qcheck::prop_assume!(end > start);
        let mut mutated = bytes.clone();
        let pos = start + (pos_raw % (end - start) as u64) as usize;
        let flipped = mutated[pos] ^ (1u8 << bit);
        // Skip flips that only toggle whitespace into other whitespace.
        qcheck::prop_assume!(
            !(mutated[pos].is_ascii_whitespace() && flipped.is_ascii_whitespace())
        );
        mutated[pos] = flipped;
        fs::write(&path, &mutated).unwrap();
        match TrainCheckpoint::load(&path) {
            Ok(back) => qcheck::prop_assert_eq!(&back, original),
            Err(e) => qcheck::prop_assert!(!e.to_string().is_empty()),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
