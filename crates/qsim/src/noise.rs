//! Stochastic Pauli noise (trajectory method).
//!
//! NISQ devices are noisy (§1 of the paper); labeling on a simulator is
//! exact, but studying how warm-started QAOA degrades under hardware noise
//! requires a noise model. This module implements the depolarizing channel
//! by stochastic unraveling: each application inserts a uniformly random
//! Pauli error with probability `p`, so averaging observables over many
//! trajectories converges to the density-matrix result without ever storing
//! a `4^n` object.

use qrand::Rng;

use crate::{gates, StateVector};

/// A single-qubit depolarizing channel with error probability `p`: with
/// probability `p` one of `X`, `Y`, `Z` (uniform) is applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Depolarizing {
    probability: f64,
}

impl Depolarizing {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= probability <= 1`.
    pub fn new(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "error probability must be in [0, 1]"
        );
        Depolarizing { probability }
    }

    /// The error probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Samples one trajectory step on a single qubit.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn apply<R: Rng + ?Sized>(&self, psi: &mut StateVector, qubit: usize, rng: &mut R) {
        if rng.gen::<f64>() >= self.probability {
            return;
        }
        match rng.gen_range(0..3) {
            0 => gates::x(psi, qubit),
            1 => {
                // Y = iXZ: apply Z then X; the global phase i is irrelevant.
                gates::z(psi, qubit);
                gates::x(psi, qubit);
            }
            _ => gates::z(psi, qubit),
        }
    }

    /// Samples one trajectory step on every qubit independently.
    pub fn apply_all<R: Rng + ?Sized>(&self, psi: &mut StateVector, rng: &mut R) {
        for q in 0..psi.num_qubits() {
            self.apply(psi, q, rng);
        }
    }
}

/// Averages a diagonal observable over `trajectories` noisy runs of a
/// circuit. `build` receives a fresh state, the channel and the RNG, and
/// must leave the final state in the register it was given.
pub fn trajectory_expectation<R, F>(
    num_qubits: usize,
    values: &[f64],
    channel: Depolarizing,
    trajectories: usize,
    rng: &mut R,
    mut build: F,
) -> f64
where
    R: Rng + ?Sized,
    F: FnMut(&mut StateVector, Depolarizing, &mut R),
{
    assert!(trajectories >= 1, "need at least one trajectory");
    let mut total = 0.0;
    for _ in 0..trajectories {
        let mut psi = StateVector::uniform_superposition(num_qubits);
        build(&mut psi, channel, rng);
        total += psi.expectation_diagonal(values);
    }
    total / trajectories as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn zero_probability_is_identity() {
        let mut rng = StdRng::seed_from_u64(61);
        let channel = Depolarizing::new(0.0);
        let mut psi = StateVector::uniform_superposition(3);
        let before = psi.clone();
        for _ in 0..50 {
            channel.apply_all(&mut psi, &mut rng);
        }
        assert_eq!(psi, before);
    }

    #[test]
    fn noise_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(62);
        let channel = Depolarizing::new(0.5);
        let mut psi = StateVector::uniform_superposition(4);
        for _ in 0..20 {
            channel.apply_all(&mut psi, &mut rng);
        }
        assert!((psi.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn full_depolarizing_randomizes_z_expectation() {
        // Start in |0⟩ (⟨Z⟩ = 1); heavy noise drives the trajectory-average
        // of ⟨Z⟩ toward 0.
        let mut rng = StdRng::seed_from_u64(63);
        let channel = Depolarizing::new(0.75);
        let z_values = [1.0, -1.0];
        let mut total = 0.0;
        let trials = 4000;
        for _ in 0..trials {
            let mut psi = StateVector::zero_state(1);
            for _ in 0..5 {
                channel.apply(&mut psi, 0, &mut rng);
            }
            total += psi.expectation_diagonal(&z_values);
        }
        let mean = total / trials as f64;
        assert!(mean.abs() < 0.05, "⟨Z⟩ after heavy noise: {mean}");
    }

    #[test]
    fn trajectory_expectation_matches_noiseless_at_p0() {
        let mut rng = StdRng::seed_from_u64(64);
        let values: Vec<f64> = (0..8).map(|z: u64| z.count_ones() as f64).collect();
        let noiseless = StateVector::uniform_superposition(3).expectation_diagonal(&values);
        let got = trajectory_expectation(
            3,
            &values,
            Depolarizing::new(0.0),
            3,
            &mut rng,
            |psi, ch, rng| ch.apply_all(psi, rng),
        );
        assert!((got - noiseless).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = Depolarizing::new(1.5);
    }
}
