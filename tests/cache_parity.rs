//! Isomorphism-invariance acceptance suite for the canonical-form
//! prediction cache (`core::cache` + `qgraph::canon`).
//!
//! The contract under test:
//!
//! 1. **Canonical hashing** — `wl_hash` is invariant under node
//!    relabeling (fuzzed with qcheck over random graphs × random
//!    permutations) and separates obviously distinct structures
//!    (path vs star).
//! 2. **Bit-exact replies** — a cache hit is bit-identical to the fresh
//!    [`GuardedPredictor::handle`] reply it memoized, apart from the
//!    `cached` marker. Holds for the same graph, for isomorphic
//!    relabelings, across shard counts, and per artifact generation.
//! 3. **Collision safety** — a constructed WL-collision pair (C6 vs
//!    2×C3: same WL colors, not isomorphic) never cross-serves: each
//!    graph gets its own parameters, never the colliding entry's.

use std::sync::Arc;

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel, ModelConfig};
use qaoa_gnn::dataset::LabelReport;
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn::{
    CacheConfig, GuardedPredictor, PredictionCache, PredictionOutcome, RunArtifact, Rung,
    ServeConfig, ServeRequest, TrainingEnvelope,
};
use qgraph::canon::{are_isomorphic, wl_hash};
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::seq::SliceRandom;
use qrand::SeedableRng;

/// An untrained artifact with a wide envelope: cheap to build per qcheck
/// case, deterministic bits for a fixed seed.
fn tiny_artifact() -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(9301);
    let config = ModelConfig {
        hidden_dim: 4,
        ..ModelConfig::default()
    };
    let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
    RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: 0,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    }
}

fn cached_predictor(cache: &Arc<PredictionCache>, generation: u64) -> GuardedPredictor {
    GuardedPredictor::new(tiny_artifact(), ServeConfig::default())
        .with_cache(Arc::clone(cache), generation)
}

/// A random connected-ish instance inside the artifact envelope.
fn random_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 4 + (seed % 9) as usize; // 4..=12 nodes
    qgraph::generate::erdos_renyi(n, 0.5, &mut rng).unwrap()
}

fn random_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bf0_3635);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    perm
}

/// Strips the one field a hit is allowed to differ in.
fn unmarked(mut outcome: PredictionOutcome) -> PredictionOutcome {
    outcome.cached = false;
    outcome
}

fn serve(predictor: &GuardedPredictor, graph: &Graph) -> PredictionOutcome {
    predictor
        .handle(&ServeRequest::from_graph(graph.clone()))
        .result
        .expect("in-envelope request must serve")
}

qcheck::properties! {
    cases = 60;

    /// Acceptance 1 (fuzz): relabeling nodes never changes the WL hash,
    /// and the exact matcher agrees the relabeling is an isomorphism.
    fn wl_hash_is_invariant_under_relabeling(seed in qcheck::any_u64()) {
        let graph = random_graph(seed);
        let relabeled = graph.relabel(&random_perm(graph.n(), seed));
        qcheck::prop_assert_eq!(wl_hash(&graph), wl_hash(&relabeled));
        qcheck::prop_assert!(are_isomorphic(&graph, &relabeled));
    }

    /// Acceptance 2 (fuzz): a cache hit — including a hit through an
    /// isomorphic relabeling — is bit-identical to the fresh reply,
    /// apart from the `cached` marker.
    fn cached_reply_is_bit_identical_to_fresh(seed in qcheck::any_u64()) {
        let cache = Arc::new(PredictionCache::new(CacheConfig::default()));
        let served = cached_predictor(&cache, 0);
        let graph = random_graph(seed);

        let fresh = serve(&served, &graph);
        qcheck::prop_assert!(!fresh.cached);

        let hit = serve(&served, &graph);
        qcheck::prop_assert!(hit.cached);
        qcheck::prop_assert_eq!(unmarked(hit), fresh.clone());

        // The canonical form, not the labeling, keys the cache: an
        // isomorphic relabeling hits and serves the same parameters.
        let relabeled = graph.relabel(&random_perm(graph.n(), seed));
        let iso_hit = serve(&served, &relabeled);
        qcheck::prop_assert!(iso_hit.cached);
        qcheck::prop_assert_eq!(unmarked(iso_hit), fresh);
    }

    /// Acceptance 2 (fuzz): shard count is invisible in replies — a
    /// 1-shard and an 8-shard cache serve identical bits.
    fn sharding_never_changes_reply_bits(seed in qcheck::any_u64()) {
        let graph = random_graph(seed);
        let mut replies = Vec::new();
        for shards in [1usize, 8] {
            let cache = Arc::new(PredictionCache::new(
                CacheConfig::default().with_shards(shards),
            ));
            let served = cached_predictor(&cache, 0);
            let _warm = serve(&served, &graph);
            replies.push(unmarked(serve(&served, &graph)));
        }
        qcheck::prop_assert_eq!(replies[0].clone(), replies[1].clone());
    }
}

#[test]
fn path_and_star_hash_differently() {
    // Same node and edge count, different structure — the WL refinement
    // must separate them (degree multisets already differ).
    let path = Graph::path(6).unwrap();
    let star = Graph::star(6).unwrap();
    assert_ne!(wl_hash(&path), wl_hash(&star));
    assert!(!are_isomorphic(&path, &star));
}

/// C6 and 2×C3: the classic 1-WL collision (both 2-regular on six
/// nodes), used here as the constructed collision pair the issue
/// requires. Their WL hashes collide; the graphs are not isomorphic.
fn collision_pair() -> (Graph, Graph) {
    let c6 = Graph::cycle(6).unwrap();
    let two_c3 =
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
    assert_eq!(wl_hash(&c6), wl_hash(&two_c3), "pair must collide under WL");
    assert!(!are_isomorphic(&c6, &two_c3));
    (c6, two_c3)
}

#[test]
fn wl_collision_never_cross_serves() {
    let (c6, two_c3) = collision_pair();
    let cache = Arc::new(PredictionCache::new(CacheConfig::default()));
    let served = cached_predictor(&cache, 0);

    // Warm the cache with C6 only. The colliding 2×C3 must NOT hit it:
    // the exact matcher behind the hash bucket rejects the collision and
    // the request runs the ladder fresh.
    let fresh_c6 = serve(&served, &c6);
    let fresh_two_c3 = serve(&served, &two_c3);
    assert!(!fresh_two_c3.cached, "collision must not serve a false hit");
    assert_eq!(cache.stats().collisions, 1, "the rejected bucket probe is counted");

    // With both resident in the same bucket, each graph serves its own
    // memoized parameters — bit-identical to its fresh reply, never the
    // colliding entry's.
    let hit_c6 = serve(&served, &c6);
    let hit_two_c3 = serve(&served, &two_c3);
    assert!(hit_c6.cached && hit_two_c3.cached);
    assert_eq!(unmarked(hit_c6), fresh_c6);
    assert_eq!(unmarked(hit_two_c3), fresh_two_c3);
}

#[test]
fn generations_partition_the_cache() {
    let cache = Arc::new(PredictionCache::new(CacheConfig::default()));
    let graph = Graph::cycle(8).unwrap();

    // Warm under generation 0, then serve the same shared cache from a
    // generation-1 predictor: the stale entry must not answer.
    let gen0 = cached_predictor(&cache, 0);
    let fresh = serve(&gen0, &graph);
    assert!(serve(&gen0, &graph).cached);

    let gen1 = cached_predictor(&cache, 1);
    let after_swap = serve(&gen1, &graph);
    assert!(!after_swap.cached, "a new generation must re-run the ladder");
    // Same untrained artifact bits back the two predictors here, so the
    // recomputed reply matches; the point is it was recomputed.
    assert_eq!(after_swap, fresh);
    assert!(serve(&gen1, &graph).cached, "generation 1 re-warms normally");
}

#[test]
fn cache_attaches_only_to_clean_gnn_replies() {
    // An out-of-envelope request degrades past the GNN rung and must not
    // be cached: replaying it re-runs the ladder every time.
    let cache = Arc::new(PredictionCache::new(CacheConfig::default()));
    let served = cached_predictor(&cache, 0);
    let big = Graph::cycle(40).unwrap(); // envelope caps at 15 nodes

    let first = serve(&served, &big);
    assert_ne!(first.rung, Rung::Gnn);
    let second = serve(&served, &big);
    assert!(!second.cached, "degraded replies are never memoized");
    assert_eq!(cache.stats().inserts, 0);
}
