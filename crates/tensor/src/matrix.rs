use std::fmt;
use std::ops::{Index, IndexMut};

use qrand::Rng;

/// A dense row-major `f64` matrix — the value type of the autodiff engine.
///
/// The GNNs in this reproduction operate on graphs of at most 15 nodes with
/// embedding widths of a few dozen, so a simple dense representation is both
/// sufficient and cache-friendly.
///
/// # Example
///
/// ```
/// use tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of ones.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn ones(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(1.0);
        m
    }

    /// Creates a matrix filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// The `n × n` identity.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from nested `Vec`s (e.g. the output of
    /// `qgraph::features::node_features`).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn from_nested(rows: &[Vec<f64>]) -> Self {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// A `1 × n` row vector.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix::from_rows(&[values])
    }

    /// Xavier/Glorot uniform initialization: `U(-s, s)` with
    /// `s = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        let s = (6.0 / (rows + cols) as f64).sqrt();
        for v in &mut m.data {
            *v = rng.gen_range(-s..=s);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_k = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(row_k) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise combination of two equal-shape matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with<F: FnMut(f64, f64) -> f64>(&self, other: &Matrix, mut f: F) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise map.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplication by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place `self += other * s` (the AXPY kernel gradient accumulation
    /// uses).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Matrix, s: f64) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Column-wise mean as a `1 × cols` row vector (mean pooling).
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(0, c)] += self[(r, c)];
            }
        }
        out.scale(1.0 / self.rows as f64)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (0 for the zero matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Concatenates two matrices horizontally (`[self | other]`).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat requires equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols]
                .copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols]
                .copy_from_slice(other.row(r));
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            let row: Vec<String> = self.row(r).iter().map(|v| format!("{v:.4}")).collect();
            writeln!(f, "[{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn constructors() {
        assert_eq!(Matrix::zeros(2, 3).sum(), 0.0);
        assert_eq!(Matrix::ones(2, 3).sum(), 6.0);
        assert_eq!(Matrix::full(2, 2, 0.5).sum(), 2.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.0], &[0.25, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(a.map(|v| v * v), Matrix::from_rows(&[&[1.0, 4.0]]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(1, 2);
        let b = Matrix::from_rows(&[&[2.0, 3.0]]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 2.5]]));
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.mean_rows(), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert!((m.frobenius_norm() - 30f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.is_finite());
        assert!(!m.map(|_| f64::NAN).is_finite());
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c, Matrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(71);
        let m = Matrix::xavier_uniform(20, 30, &mut rng);
        let bound = (6.0 / 50.0f64).sqrt();
        assert!(m.max_abs() <= bound + 1e-12);
        // Should actually vary.
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn display_renders_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(m.to_string(), "[1.0000, 2.0000]\n");
    }

    #[test]
    fn from_flat_and_nested() {
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 1)], 4.0);
        let n = Matrix::from_nested(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m, n);
        let rv = Matrix::row_vector(&[7.0, 8.0]);
        assert_eq!(rv.shape(), (1, 2));
    }
}
