use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};


/// A complex number with `f64` components.
///
/// The approved offline dependency set contains no complex-arithmetic crate,
/// so the simulator carries its own minimal implementation. Only the
/// operations a state-vector simulator needs are provided.
///
/// # Example
///
/// ```
/// use qsim::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// assert!((Complex::from_polar(1.0, std::f64::consts::PI).re + 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates `r * e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — the unit phase used by diagonal gate application.
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn multiplication_and_division_inverse() {
        let a = Complex::new(2.0, -3.0);
        let b = Complex::new(0.5, 1.5);
        let q = a / b;
        let back = q * b;
        assert!((back - a).norm() < 1e-12);
    }

    #[test]
    fn conjugate_and_norms() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert!(((a * a.conj()).re - 25.0).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, FRAC_PI_2);
        assert!(z.re.abs() < 1e-15);
        assert!((z.im - 2.0).abs() < 1e-15);
        assert!((z.arg() - FRAC_PI_2).abs() < 1e-15);
        assert!((Complex::cis(PI).re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut a = Complex::ONE;
        a += Complex::I;
        a -= Complex::ONE;
        a *= Complex::new(0.0, -1.0);
        assert!((a - Complex::ONE).norm() < 1e-15);
        let total: Complex = vec![Complex::ONE, Complex::I, Complex::new(1.0, 1.0)]
            .into_iter()
            .sum();
        assert_eq!(total, Complex::new(2.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn from_f64() {
        let z: Complex = 2.5f64.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
        assert_eq!(z * 2.0, Complex::new(5.0, 0.0));
    }
}
