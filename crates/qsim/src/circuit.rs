//! Explicit gate circuits.
//!
//! QAOA's inner loop uses the diagonal fast path, but a real deployment
//! compiles to gates; [`Circuit`] is that explicit view, with resource
//! accounting (gate counts, two-qubit counts, depth) and an exact
//! [`Circuit::maxcut_qaoa`] decomposition that the tests verify against the
//! fast path.


use crate::{gates, StateVector};

/// A gate in a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Hadamard on one qubit.
    H(usize),
    /// Pauli-X on one qubit.
    X(usize),
    /// Pauli-Z on one qubit.
    Z(usize),
    /// `RX(θ)` rotation.
    Rx(usize, f64),
    /// `RY(θ)` rotation.
    Ry(usize, f64),
    /// `RZ(θ)` rotation.
    Rz(usize, f64),
    /// Controlled-NOT (control, target).
    Cnot(usize, usize),
    /// `RZZ(θ)` interaction (qubit_a, qubit_b, θ).
    Rzz(usize, usize, f64),
}

impl Gate {
    /// Qubits the gate touches (1 or 2).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Z(q) => vec![q],
            Gate::Rx(q, _) | Gate::Ry(q, _) | Gate::Rz(q, _) => vec![q],
            Gate::Cnot(a, b) | Gate::Rzz(a, b, _) => vec![a, b],
        }
    }

    /// The inverse gate (all supported gates are invertible).
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(q),
            Gate::X(q) => Gate::X(q),
            Gate::Z(q) => Gate::Z(q),
            Gate::Rx(q, t) => Gate::Rx(q, -t),
            Gate::Ry(q, t) => Gate::Ry(q, -t),
            Gate::Rz(q, t) => Gate::Rz(q, -t),
            Gate::Cnot(a, b) => Gate::Cnot(a, b),
            Gate::Rzz(a, b, t) => Gate::Rzz(a, b, -t),
        }
    }

    fn apply(&self, psi: &mut StateVector) {
        match *self {
            Gate::H(q) => gates::h(psi, q),
            Gate::X(q) => gates::x(psi, q),
            Gate::Z(q) => gates::z(psi, q),
            Gate::Rx(q, t) => gates::rx(psi, q, t),
            Gate::Ry(q, t) => gates::ry(psi, q, t),
            Gate::Rz(q, t) => gates::rz(psi, q, t),
            Gate::Cnot(a, b) => gates::cnot(psi, a, b),
            Gate::Rzz(a, b, t) => gates::rzz(psi, a, b, t),
        }
    }
}

/// An ordered gate sequence on a fixed register — the explicit-circuit view
/// of what QAOA's fast path applies implicitly.
///
/// Useful for resource accounting (the "quantum computational resource
/// overhead" the paper's abstract talks about), for cross-checking the
/// diagonal fast path against a literal gate decomposition, and for
/// exporting circuits to other tools.
///
/// # Example
///
/// ```
/// use qsim::circuit::{Circuit, Gate};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H(0));
/// bell.push(Gate::Cnot(0, 1));
/// let psi = bell.simulate();
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert_eq!(bell.two_qubit_gate_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or exceeds [`crate::MAX_QUBITS`].
    pub fn new(num_qubits: usize) -> Self {
        assert!(
            (1..=crate::MAX_QUBITS).contains(&num_qubits),
            "num_qubits must be in 1..={}",
            crate::MAX_QUBITS
        );
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate sequence.
    pub fn ops(&self) -> &[Gate] {
        &self.ops
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit `>= num_qubits` or a two-qubit
    /// gate with identical qubits.
    pub fn push(&mut self, gate: Gate) {
        let qubits = gate.qubits();
        for &q in &qubits {
            assert!(q < self.num_qubits, "qubit {q} out of range");
        }
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate needs distinct qubits");
        }
        self.ops.push(gate);
    }

    /// Appends every gate of `other` (register sizes must match).
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(self.num_qubits, other.num_qubits, "register sizes differ");
        self.ops.extend_from_slice(&other.ops);
    }

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of two-qubit gates — the dominant NISQ cost metric.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|g| g.qubits().len() == 2).count()
    }

    /// Circuit depth: the length of the longest qubit-wise dependency chain
    /// under greedy layering (gates pack into the earliest layer whose
    /// qubits are free).
    pub fn depth(&self) -> usize {
        let mut busy_until = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for gate in &self.ops {
            let layer = gate
                .qubits()
                .iter()
                .map(|&q| busy_until[q])
                .max()
                .unwrap_or(0)
                + 1;
            for q in gate.qubits() {
                busy_until[q] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// The inverse circuit (gates reversed and individually inverted).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            ops: self.ops.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Applies the circuit to an existing state.
    ///
    /// # Panics
    ///
    /// Panics if the state has a different qubit count.
    pub fn apply(&self, psi: &mut StateVector) {
        assert_eq!(
            psi.num_qubits(),
            self.num_qubits,
            "state and circuit register sizes differ"
        );
        for gate in &self.ops {
            gate.apply(psi);
        }
    }

    /// Runs the circuit on `|0...0⟩` and returns the final state.
    pub fn simulate(&self) -> StateVector {
        let mut psi = StateVector::zero_state(self.num_qubits);
        self.apply(&mut psi);
        psi
    }

    /// Builds the explicit gate decomposition of a p-layer Max-Cut QAOA
    /// circuit: a Hadamard wall, then per layer one `RZZ(−γw)` per edge and
    /// one `RX(2β)` per qubit. (The edge phase `e^{-iγ w (1 - Z⊗Z)/2}`
    /// equals `RZZ(−γ w)` up to a global phase, so this matches
    /// [`crate::diagonal::DiagonalOperator::apply_phase`] on cut values.)
    pub fn maxcut_qaoa(
        num_qubits: usize,
        edges: &[(usize, usize, f64)],
        gammas: &[f64],
        betas: &[f64],
    ) -> Circuit {
        assert_eq!(gammas.len(), betas.len(), "angle vectors must match");
        let mut circuit = Circuit::new(num_qubits);
        for q in 0..num_qubits {
            circuit.push(Gate::H(q));
        }
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            for &(u, v, w) in edges {
                circuit.push(Gate::Rzz(u, v, -gamma * w));
            }
            for q in 0..num_qubits {
                circuit.push(Gate::Rx(q, 2.0 * beta));
            }
        }
        circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        let psi = c.simulate();
        assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.two_qubit_gate_count(), 1);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn inverse_undoes_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Rx(1, 0.7));
        c.push(Gate::Cnot(0, 2));
        c.push(Gate::Rzz(1, 2, 1.1));
        c.push(Gate::Ry(2, -0.4));
        c.push(Gate::Rz(0, 2.2));
        let mut full = c.clone();
        full.extend(&c.inverse());
        let psi = full.simulate();
        assert!((psi.probability(0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depth_packs_parallel_gates() {
        let mut c = Circuit::new(4);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        c.push(Gate::H(2));
        c.push(Gate::H(3));
        assert_eq!(c.depth(), 1, "disjoint gates share a layer");
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(2, 3));
        assert_eq!(c.depth(), 2);
        c.push(Gate::Cnot(1, 2));
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn qaoa_decomposition_matches_fast_path() {
        use crate::diagonal::DiagonalOperator;
        let edges = [(0usize, 1usize, 1.0f64), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)];
        let (gamma, beta) = (0.63, 0.27);
        let explicit = Circuit::maxcut_qaoa(4, &edges, &[gamma], &[beta]).simulate();

        // Fast path: diagonal cut-value phases + RX wall.
        let cut = |z: u64| {
            edges
                .iter()
                .filter(|&&(u, v, _)| (z >> u) & 1 != (z >> v) & 1)
                .map(|&(_, _, w)| w)
                .sum::<f64>()
        };
        let op = DiagonalOperator::from_fn(4, cut);
        let mut fast = StateVector::uniform_superposition(4);
        op.apply_phase(&mut fast, gamma);
        gates::rx_all(&mut fast, 2.0 * beta);

        assert!(
            (explicit.fidelity(&fast) - 1.0).abs() < 1e-10,
            "gate decomposition must agree with the diagonal fast path"
        );
    }

    #[test]
    fn qaoa_resource_counts() {
        let edges = [(0usize, 1usize, 1.0f64), (1, 2, 1.0)];
        let c = Circuit::maxcut_qaoa(3, &edges, &[0.1, 0.2], &[0.3, 0.4]);
        // 3 H + 2 layers × (2 RZZ + 3 RX).
        assert_eq!(c.gate_count(), 3 + 2 * (2 + 3));
        assert_eq!(c.two_qubit_gate_count(), 4);
        assert!(c.depth() >= 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_bad_qubit() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(2));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn push_rejects_degenerate_two_qubit_gate() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(1, 1));
    }

    #[test]
    fn gate_helpers() {
        assert_eq!(Gate::Rzz(0, 2, 0.5).qubits(), vec![0, 2]);
        assert_eq!(Gate::Rx(1, 0.5).inverse(), Gate::Rx(1, -0.5));
        assert_eq!(Gate::H(0).inverse(), Gate::H(0));
    }
}
