//! Golden cross-check: the `2^n` state-vector simulator against the
//! closed-form p=1 Max-Cut expectation of Wang et al. (PRA 97, 022304).
//!
//! The two implementations share no code — the simulator applies gates to
//! amplitudes, the analytic formula sums a trigonometric expression over
//! edges — so agreement to 1e-10 pins down both: any phase-convention slip,
//! diagonal-table bug, or formula typo breaks it.

use qrand::rngs::StdRng;
use qrand::{Rng, SeedableRng};

use qaoa::analytic;
use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::Graph;

fn simulator_expectation(graph: &Graph, gamma: f64, beta: f64) -> f64 {
    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(graph));
    circuit.expectation(&Params::new(vec![gamma], vec![beta]))
}

fn assert_matches(graph: &Graph, gamma: f64, beta: f64, what: &str) {
    let sim = simulator_expectation(graph, gamma, beta);
    let formula = analytic::graph_expectation(graph, gamma, beta);
    assert!(
        (sim - formula).abs() < 1e-10,
        "{what}: γ={gamma} β={beta}: simulator {sim} vs analytic {formula}"
    );
}

#[test]
fn random_erdos_renyi_graphs_match_closed_form() {
    let mut rng = StdRng::seed_from_u64(4242);
    for trial in 0..20 {
        let n = rng.gen_range(3usize..=9);
        let p = rng.gen_range(0.2..0.9);
        let graph = qgraph::generate::erdos_renyi(n, p, &mut rng).expect("valid shape");
        for _ in 0..4 {
            let gamma = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
            let beta = rng.gen_range(0.0..std::f64::consts::PI);
            assert_matches(&graph, gamma, beta, &format!("ER trial {trial} (n={n})"));
        }
    }
}

#[test]
fn random_regular_graphs_match_closed_form() {
    let mut rng = StdRng::seed_from_u64(777);
    for trial in 0..12 {
        let n = 2 * rng.gen_range(2usize..=5); // even so odd degrees are feasible
        let d = rng.gen_range(2usize..n.min(6));
        let graph = qgraph::generate::random_regular(n, d, &mut rng).expect("feasible");
        for _ in 0..4 {
            let gamma = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
            let beta = rng.gen_range(0.0..std::f64::consts::PI);
            assert_matches(
                &graph,
                gamma,
                beta,
                &format!("regular trial {trial} (n={n}, d={d})"),
            );
        }
    }
}

#[test]
fn triangle_heavy_graphs_exercise_the_lambda_term() {
    // Complete graphs maximize common neighbors per edge, stressing the
    // cos^λ(2γ) factor that random sparse graphs barely touch.
    let mut rng = StdRng::seed_from_u64(99);
    for n in 3..=8 {
        let graph = Graph::complete(n).expect("valid size");
        for _ in 0..5 {
            let gamma = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
            let beta = rng.gen_range(0.0..std::f64::consts::PI);
            assert_matches(&graph, gamma, beta, &format!("K{n}"));
        }
    }
}

#[test]
fn angle_grid_on_one_fixed_graph() {
    // A deterministic dense sweep on one graph catches angle-dependent sign
    // errors that sparse random sampling can miss.
    let mut rng = StdRng::seed_from_u64(5);
    let graph = qgraph::generate::random_regular(8, 3, &mut rng).expect("feasible");
    for i in 0..12 {
        for j in 0..12 {
            let gamma = i as f64 * std::f64::consts::PI / 6.0;
            let beta = j as f64 * std::f64::consts::PI / 12.0;
            assert_matches(&graph, gamma, beta, "grid");
        }
    }
}
