//! Process-level SIGKILL chaos harness for the crash-safe pipeline.
//!
//! Proves the tentpole claim of the checkpointed training stack end to
//! end, at the only level that actually demonstrates crash safety: whole
//! processes dying. The harness
//!
//! 1. runs the real pipeline as a subprocess to completion (the
//!    **control**) and stashes its artifact bytes,
//! 2. wipes the work directory and re-runs the same pipeline as a
//!    sequence of subprocesses, SIGKILLing each one at a scripted
//!    wall-phase — mid-label, mid-epoch, mid-checkpoint-write (inside the
//!    atomic write protocol, tmp file on disk, rename not yet issued),
//!    and mid-artifact-save — relaunching with the same checkpoint
//!    directory after every kill,
//! 3. lets a final relaunch run to completion and asserts the surviving
//!    artifact is **byte-identical** to the control.
//!
//! The mid-write phases are made deterministic with the `stall` fault
//! action: `QAOA_GNN_FAULTS="checkpoint_write=stall:1"` parks the child
//! between tmp-flush and rename, the parent waits for the tmp file to
//! appear, then kills into the window. No sleeps-and-hope.
//!
//! ```text
//! cargo run --release -p qaoa-gnn-bench --bin crash_resume            # full
//! cargo run --release -p qaoa-gnn-bench --bin crash_resume -- --smoke # CI-sized
//! ```
//!
//! Flags: `--smoke` (smaller run, same phases), `--seed N` (kill-jitter
//! schedule seed, default 42). Exit code 0 only if every phase behaved
//! and the final artifact matches the control bit for bit.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use gnn::train::TrainConfig;
use gnn::GnnKind;
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qgraph::generate::DatasetSpec;
use qrand::rngs::StdRng;
use qrand::{Rng, SeedableRng};

const ARTIFACT_FILE: &str = "artifact.json";
const DEFAULT_SEED: u64 = 42;
/// Stall budget handed to children: far longer than the parent needs to
/// observe the marker and kill, so the kill always lands inside the window.
const CHILD_STALL_MS: &str = "120000";

fn fail(msg: &str) -> ExitCode {
    eprintln!("FAIL: {msg}");
    ExitCode::FAILURE
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The run every subprocess executes: one GCN pipeline with labeling
/// journal, training checkpoints, and artifact save all under `dir`.
struct RunSpec {
    dir: PathBuf,
    seed: u64,
    count: usize,
    iterations: usize,
    epochs: usize,
    test: usize,
}

impl RunSpec {
    fn config(&self) -> PipelineConfig {
        PipelineConfig::quick()
            .with_dataset(DatasetSpec::with_count(self.count))
            .with_iterations(self.iterations)
            .with_training(TrainConfig::quick(self.epochs))
            .with_test_size(self.test)
            .with_seed(self.seed)
            .with_checkpoint_dir(Some(self.dir.clone()))
            .with_artifact_path(Some(self.dir.join(ARTIFACT_FILE)))
    }

    fn child_args(&self) -> Vec<String> {
        vec![
            "--child".into(),
            self.dir.display().to_string(),
            self.seed.to_string(),
            self.count.to_string(),
            self.iterations.to_string(),
            self.epochs.to_string(),
            self.test.to_string(),
        ]
    }
}

/// Child mode: run the pipeline once and exit. The parent owns all fault
/// arming (via the environment) and all killing.
fn run_child(args: &[String]) -> ExitCode {
    if args.len() != 6 {
        return fail("--child needs <dir> <seed> <count> <iterations> <epochs> <test>");
    }
    let parse = |s: &String| s.parse::<u64>().expect("numeric child arg");
    let spec = RunSpec {
        dir: PathBuf::from(&args[0]),
        seed: parse(&args[1]),
        count: parse(&args[2]) as usize,
        iterations: parse(&args[3]) as usize,
        epochs: parse(&args[4]) as usize,
        test: parse(&args[5]) as usize,
    };
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x00c7_a54e_5e5e_0001);
    match Pipeline::try_run(GnnKind::Gcn, &spec.config(), &mut rng) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("child pipeline error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One scripted kill: which fault env to arm (if any), which on-disk
/// marker signals "the child is inside the target phase", and the label
/// reported in the summary.
struct Phase {
    label: &'static str,
    faults: Option<&'static str>,
    marker: fn(&Path) -> PathBuf,
}

fn phases() -> Vec<Phase> {
    vec![
        Phase {
            label: "mid-label",
            // Stall the first journal append: the child parks with the
            // journal open and no label yet durable.
            faults: Some("journal_io=stall:1"),
            marker: |dir| dir.join("journal.tsv"),
        },
        Phase {
            label: "mid-epoch",
            // No stall: kill as soon as the first training checkpoint
            // lands, while later epochs are computing.
            faults: None,
            marker: |dir| dir.join("train.gcn.ckpt.json"),
        },
        Phase {
            label: "mid-checkpoint-write",
            // Stall between checkpoint tmp-flush and rename; the tmp file
            // on disk is the proof the child is inside the window.
            faults: Some("checkpoint_write=stall:1"),
            marker: |dir| dir.join("train.gcn.ckpt.json.tmp"),
        },
        Phase {
            label: "mid-artifact-save",
            faults: Some("artifact_save=stall:1"),
            marker: |dir| dir.join(format!("{ARTIFACT_FILE}.tmp")),
        },
    ]
}

fn spawn_child(spec: &RunSpec, faults: Option<&str>) -> std::io::Result<std::process::Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.args(spec.child_args())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .env_remove("QAOA_GNN_FAULTS")
        .env("QAOA_GNN_STALL_MS", CHILD_STALL_MS);
    if let Some(spec) = faults {
        cmd.env("QAOA_GNN_FAULTS", spec);
    }
    cmd.spawn()
}

/// Runs the child with no faults and waits for clean completion.
fn run_to_completion(spec: &RunSpec, what: &str) -> Result<(), String> {
    let mut child = spawn_child(spec, None).map_err(|e| format!("spawn {what}: {e}"))?;
    let status = child.wait().map_err(|e| format!("wait {what}: {e}"))?;
    if !status.success() {
        return Err(format!("{what} run exited with {status}"));
    }
    Ok(())
}

/// Spawns the child for one phase, waits for its marker, and SIGKILLs it.
/// Returns `Ok(true)` if a kill landed, `Ok(false)` if the child finished
/// before the marker appeared (tiny runs can outrace a phase).
fn kill_in_phase(spec: &RunSpec, phase: &Phase, jitter: Duration) -> Result<bool, String> {
    let marker = (phase.marker)(&spec.dir);
    // Stale markers from an earlier round would fire instantly; only the
    // mid-epoch checkpoint can legitimately pre-exist, and killing at
    // startup there is still a valid mid-pipeline kill.
    let mut child =
        spawn_child(spec, phase.faults).map_err(|e| format!("spawn {}: {e}", phase.label))?;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if marker.exists() {
            std::thread::sleep(jitter);
            // SIGKILL: no destructors, no flushes — the real crash model.
            child.kill().map_err(|e| format!("kill {}: {e}", phase.label))?;
            let _ = child.wait();
            return Ok(true);
        }
        if let Some(status) = child
            .try_wait()
            .map_err(|e| format!("try_wait {}: {e}", phase.label))?
        {
            if status.success() {
                return Ok(false);
            }
            return Err(format!(
                "{} child failed ({status}) instead of being killed",
                phase.label
            ));
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("{}: marker never appeared", phase.label));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Measures per-epoch checkpoint overhead in-process: time spent inside
/// the atomic checkpoint save as a fraction of total training wall-clock,
/// with the training set replicated to `train_size` examples. Epoch cost
/// scales with the example count while the checkpoint cost is fixed (model
/// size + fsync), so this cheaply reproduces the overhead profile of any
/// dataset scale without labeling that many graphs.
fn measure_overhead(spec: &RunSpec, train_size: usize) -> Result<(f64, usize), String> {
    use gnn::GnnModel;
    use qaoa_gnn::dataset::Dataset;
    use qaoa_gnn::pipeline::to_examples;
    use qaoa_gnn::store;

    let config = spec.config();
    let (dataset, _) = Dataset::generate_checked(
        &config.dataset,
        &config.labeling,
        config.seed,
        None,
    )
    .map_err(|e| format!("overhead dataset: {e}"))?;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let model = GnnModel::new(GnnKind::Gcn, config.model.clone(), &mut rng);
    let base = to_examples(&dataset, &config.model);
    let examples: Vec<_> = base.iter().cycle().take(train_size).cloned().collect();
    let dir = spec.dir.join("overhead");
    let path = store::train_checkpoint_path(&dir, GnnKind::Gcn);
    let mut save_time = Duration::ZERO;
    let mut saves = 0usize;
    let start = Instant::now();
    gnn::train::train_resumable(
        &model,
        &examples,
        &config.training,
        &mut rng,
        None,
        1,
        |state| {
            let t = Instant::now();
            store::TrainCheckpoint {
                kind: GnnKind::Gcn,
                identity: 0,
                state: state.clone(),
            }
            .save(&path)?;
            save_time += t.elapsed();
            saves += 1;
            Ok(())
        },
    )
    .map_err(|e| format!("overhead training: {e}"))?;
    let total = start.elapsed();
    let _ = std::fs::remove_dir_all(&dir);
    Ok((save_time.as_secs_f64() / total.as_secs_f64() * 100.0, saves))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        return run_child(&args[1..]);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_SEED);

    let work = PathBuf::from("target").join(if smoke {
        "crash_resume_smoke"
    } else {
        "crash_resume"
    });
    let _ = std::fs::remove_dir_all(&work);
    let spec = if smoke {
        RunSpec {
            dir: work.join("run"),
            seed,
            count: 24,
            iterations: 30,
            epochs: 6,
            test: 6,
        }
    } else {
        RunSpec {
            dir: work.join("run"),
            seed,
            count: 48,
            iterations: 60,
            epochs: 10,
            test: 10,
        }
    };
    let artifact = spec.dir.join(ARTIFACT_FILE);

    // Control: one never-killed run.
    println!("crash_resume: control run…");
    let started = Instant::now();
    if let Err(e) = run_to_completion(&spec, "control") {
        return fail(&e);
    }
    let control_bytes = match std::fs::read(&artifact) {
        Ok(b) => b,
        Err(e) => return fail(&format!("read control artifact: {e}")),
    };
    println!(
        "crash_resume: control artifact {} bytes, fnv64 {:#018x} ({:.1}s)",
        control_bytes.len(),
        fnv64(&control_bytes),
        started.elapsed().as_secs_f64()
    );

    // Chaos: same run, killed at every scripted phase, then finished.
    if let Err(e) = std::fs::remove_dir_all(&spec.dir) {
        return fail(&format!("wipe work dir: {e}"));
    }
    let mut schedule_rng = StdRng::seed_from_u64(seed ^ 0x005e_ed5c_4ed0_1e00);
    let mut kills: Vec<&'static str> = Vec::new();
    for phase in phases() {
        let jitter = Duration::from_millis(schedule_rng.gen_range(0..20));
        match kill_in_phase(&spec, &phase, jitter) {
            Ok(true) => {
                println!("crash_resume: SIGKILL landed {}", phase.label);
                kills.push(phase.label);
            }
            Ok(false) => {
                println!(
                    "crash_resume: child completed before {} (no kill)",
                    phase.label
                );
            }
            Err(e) => return fail(&e),
        }
    }
    if kills.len() < 2 {
        return fail(&format!(
            "only {} SIGKILL(s) landed; the chaos run must be killed in at least 2 distinct stages",
            kills.len()
        ));
    }
    println!("crash_resume: final relaunch…");
    if let Err(e) = run_to_completion(&spec, "final") {
        return fail(&e);
    }
    let chaos_bytes = match std::fs::read(&artifact) {
        Ok(b) => b,
        Err(e) => return fail(&format!("read chaos artifact: {e}")),
    };
    if chaos_bytes != control_bytes {
        return fail(&format!(
            "artifact diverged: control fnv64 {:#018x} ({} bytes) vs chaos {:#018x} ({} bytes)",
            fnv64(&control_bytes),
            control_bytes.len(),
            fnv64(&chaos_bytes),
            chaos_bytes.len()
        ));
    }
    println!(
        "crash_resume: artifact byte-identical after {} SIGKILLs ({})",
        kills.len(),
        kills.join(", ")
    );

    // Overhead profile: the checkpoint cost is fixed per epoch, so its
    // share shrinks as the training set grows. Smoke stops at quick()
    // scale; the full run adds the paper's 9598-graph scale, where the
    // < 2% budget must hold.
    let sizes: &[usize] = if smoke { &[360] } else { &[360, 9598] };
    for &size in sizes {
        match measure_overhead(&spec, size) {
            Ok((percent, saves)) => println!(
                "crash_resume: checkpoint overhead at {size} train examples: \
                 {percent:.2}% of training wall-clock ({saves} atomic saves)"
            ),
            Err(e) => return fail(&e),
        }
    }
    println!("crash_resume: PASS");
    ExitCode::SUCCESS
}
