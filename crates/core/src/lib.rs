//! # qaoa-gnn — GNN warm-starts for QAOA parameter prediction
//!
//! This crate is the paper's contribution (Liang et al., DAC 2024): use a
//! graph neural network, trained on classically simulated QAOA outcomes, to
//! predict good initial `(γ, β)` parameters for unseen Max-Cut instances —
//! spending cheap classical compute to save scarce quantum iterations.
//!
//! The pipeline mirrors §3 of the paper:
//!
//! 1. [`dataset`] — generate synthetic regular graphs (2–15 nodes) and label
//!    each by running QAOA from random initialization for a fixed iteration
//!    budget (§3.1). Labeling parallelizes across graphs with scoped
//!    `std::thread` workers.
//! 2. [`sdp`] — Selective Data Pruning: drop (a tunable fraction of)
//!    low-approximation-ratio labels that would misdirect training (§3.3).
//! 3. [`fixed`] — fixed-angle augmentation for regular graphs of degrees
//!    3–11 (§3.3).
//! 4. [`pipeline`] — train the four GNN benchmarks on the labeled dataset.
//! 5. [`eval`] — compare GNN-predicted initialization against random
//!    initialization on held-out test graphs (§4, Figure 5 / Table 1).
//!
//! ## Quick start
//!
//! ```no_run
//! use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
//! use gnn::GnnKind;
//! use qrand::SeedableRng;
//!
//! let mut rng = qrand::rngs::StdRng::seed_from_u64(7);
//! let config = PipelineConfig::quick(); // CI-sized; `paper_scale()` for full
//! let pipeline = Pipeline::run(GnnKind::Gin, &config, &mut rng);
//! println!("mean AR improvement: {:.2} pts", pipeline.report.mean_improvement);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod dataset;
pub mod eval;
pub mod faults;
pub mod fixed;
pub mod json;
pub mod pipeline;
pub mod sdp;
pub mod serve;
pub mod serve_loop;
pub mod store;

pub use dataset::{Dataset, LabeledGraph};
pub use eval::{EvaluationReport, GraphComparison};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use pipeline::{Pipeline, PipelineConfig, PipelineError};
pub use serve::{
    EnvelopeStatus, GuardedPredictor, PredictionOutcome, Priority, RequestError, RequestPayload,
    Rung, ServeConfig, ServeRequest, ServeResponse, Skip, SkipReason,
};
pub use breaker::{BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker};
pub use cache::{CacheConfig, CacheStats, PredictionCache};
pub use faults::{FaultSchedule, ScheduledFault};
pub use serve_loop::{
    Completed, Health, HealthReason, HealthReport, LoopConfig, LoopMetrics, LoopStats, ServeLoop,
    SwapError, Ticket, WaitTimeout,
};
pub use store::{
    ArtifactError, EnvelopeViolation, RunArtifact, TrainCheckpoint, TrainingEnvelope,
};
