//! Property-based tests for the graph substrate.

use qcheck::{any_u64, prop_assert, prop_assert_eq, prop_assume, properties, vec};
use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qgraph::{generate, io, maxcut, stats, Graph};

/// Builds the canonical "arbitrary graph" from primitive case coordinates:
/// an Erdős–Rényi draw from a seeded generator. Keeping the generator
/// arguments primitive lets qcheck shrink `n`/`p` toward the small corner.
fn build_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate::erdos_renyi(n, p, &mut rng).expect("valid parameters")
}

properties! {
    fn handshake_lemma(n in 2usize..12, p in 0.0f64..=1.0, seed in any_u64()) {
        let g = build_graph(n, p, seed);
        let degree_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
    }

    fn degree_histogram_total_counts_all_nodes(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        let h = stats::degree_histogram(std::iter::once(&g));
        prop_assert_eq!(h.total(), g.n());
    }

    fn text_io_round_trips(n in 2usize..12, p in 0.0f64..=1.0, seed in any_u64()) {
        let g = build_graph(n, p, seed);
        let s = io::graph_to_string(&g);
        let back = io::graph_from_str(&s).unwrap();
        prop_assert_eq!(g, back);
    }

    fn random_regular_is_regular(
        n in 2usize..16,
        d_raw in 0usize..15,
        seed in any_u64(),
    ) {
        let d = d_raw % n;
        prop_assume!((n * d) % 2 == 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::random_regular(n, d, &mut rng).unwrap();
        prop_assert_eq!(g.regular_degree(), Some(d));
        prop_assert_eq!(g.m(), n * d / 2);
        // Simplicity is enforced by construction; double-check no duplicates.
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            prop_assert!(e.u < e.v);
            prop_assert!(seen.insert((e.u, e.v)));
        }
    }

    fn brute_force_at_least_half_total_weight(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        // A classical fact: max cut >= W/2 (random assignment argument).
        let best = maxcut::brute_force(&g);
        prop_assert!(best.value >= g.total_weight() / 2.0 - 1e-9);
        prop_assert!(best.value <= g.total_weight() + 1e-9);
    }

    fn brute_force_dominates_heuristics(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
        cut_seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let opt = maxcut::brute_force(&g).value;
        prop_assert!(maxcut::greedy(&g).value <= opt + 1e-9);
        let rc = maxcut::random_cut(&g, &mut rng);
        prop_assert!(rc.value <= opt + 1e-9);
        prop_assert!(maxcut::local_search(&g, rc.side).value <= opt + 1e-9);
    }

    fn cut_value_invariant_under_complement(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
        cut_seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let c = maxcut::random_cut(&g, &mut rng);
        prop_assert!((c.complement(&g).value - c.value).abs() < 1e-9);
    }

    fn relabeling_preserves_maxcut(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
        perm_seed in any_u64(),
    ) {
        use qrand::seq::SliceRandom;
        let g = build_graph(n, p, seed);
        let mut rng = StdRng::seed_from_u64(perm_seed);
        let mut perm: Vec<usize> = (0..g.n()).collect();
        perm.shuffle(&mut rng);
        let h = g.relabel(&perm);
        prop_assert!((maxcut::brute_force(&g).value - maxcut::brute_force(&h).value).abs() < 1e-9);
    }

    // ---- parser hardening: totality under hostile input ----
    //
    // The text parser feeds the serving path, so it must be *total*: any
    // byte soup either parses or fails with a typed `ParseError` — never a
    // panic, never an unbounded allocation (strict serving limits are used
    // so a fuzzed "n 999999999" line cannot allocate).

    fn parser_never_panics_on_arbitrary_bytes(
        bytes in vec(0u64..=255, 0usize..200),
    ) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&raw);
        let result = std::panic::catch_unwind(|| {
            io::graph_from_str_limited(&text, &io::ParseLimits::serving()).map(|g| g.n())
        });
        prop_assert!(result.is_ok(), "parser panicked on {:?}", text);
    }

    fn parser_never_panics_on_arbitrary_lines(
        tokens in vec(0u64..=400, 0usize..40),
        seed in any_u64(),
    ) {
        // Structured fuzz: plausible-looking records with corrupted fields
        // exercise the deep paths raw byte soup rarely reaches.
        let mut rng = StdRng::seed_from_u64(seed);
        use qrand::Rng as _;
        let mut text = String::new();
        for &t in &tokens {
            let line = match t % 8 {
                0 => format!("n {}", t),
                1 => format!("e {} {}", rng.gen_range(0..20), rng.gen_range(0..20)),
                2 => format!("e {} {} {}", t, t, f64::NAN),
                3 => format!("e {} {} {:e}", t, t.wrapping_add(1), t as f64 * 1e300),
                4 => "e".to_string(),
                5 => format!("# comment {t}"),
                6 => format!("{} {} {}", t, t, t),
                _ => format!("n {}", u64::MAX),
            };
            text.push_str(&line);
            text.push('\n');
        }
        let result = std::panic::catch_unwind(|| {
            io::graph_from_str_limited(&text, &io::ParseLimits::serving()).map(|g| g.n())
        });
        prop_assert!(result.is_ok(), "parser panicked on {:?}", text);
    }

    fn parser_survives_single_byte_mutations_of_valid_files(
        n in 2usize..10,
        p in 0.0f64..=1.0,
        seed in any_u64(),
        pos_raw in any_u64(),
        byte in 0u64..=255,
    ) {
        // Mirror of the artifact bit-flip fuzzing (PR 4): take a valid
        // file, smash one byte, and require a typed outcome — either a
        // clean parse (the mutation hit a comment/whitespace or produced
        // an equally valid file) or a `ParseError`. Never a panic.
        let g = build_graph(n, p, seed);
        let mut raw = io::graph_to_string(&g).into_bytes();
        prop_assume!(!raw.is_empty());
        let pos = (pos_raw as usize) % raw.len();
        raw[pos] = byte as u8;
        let text = String::from_utf8_lossy(&raw).into_owned();
        let result = std::panic::catch_unwind(move || {
            io::graph_from_str_limited(&text, &io::ParseLimits::serving()).map(|g| g.n())
        });
        prop_assert!(result.is_ok(), "parser panicked after mutating byte {pos}");
    }

    fn mean_std_bounds(values in vec(-100.0f64..100.0, 1usize..50)) {
        let (mean, std) = stats::mean_std(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert!(std >= 0.0);
        prop_assert!(std <= (hi - lo) + 1e-9);
    }
}
