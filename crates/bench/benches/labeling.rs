//! End-to-end dataset-labeling benchmark: `Dataset::label_graphs` on a
//! paper-shaped batch (2–15 nodes, degree 2–14) at 1/2/4/8 worker
//! threads — the parallel-scaling profile of the §3.1 hot path.
//!
//! Results stream as JSON lines like every other qbench target; pass
//! `-- --test` for the CI smoke mode.

use qbench::Bench;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa_gnn::dataset::{Dataset, LabelConfig};
use qgraph::generate::DatasetSpec;

fn main() {
    let mut bench = Bench::from_env();
    // One paper-shaped batch, generated once and labeled under every
    // thread count so the scaling numbers share inputs.
    let mut rng = StdRng::seed_from_u64(42);
    let graphs = DatasetSpec::with_count(24)
        .generate(&mut rng)
        .expect("paper-shaped spec is valid");
    // A fraction of the paper's 500-iteration budget keeps one labeling
    // pass CI-sized while preserving the per-graph work profile.
    let base = LabelConfig::quick(60);

    bench.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let config = base.clone().with_threads(threads);
        let graphs = &graphs;
        bench.bench_with_input("label_graphs_n24", threads, move || {
            let ds = Dataset::label_graphs(graphs, &config, 7);
            ds.mean_approx_ratio()
        });
    }
    bench.finish();
}
