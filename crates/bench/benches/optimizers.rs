//! Micro-benchmarks of the classical outer-loop optimizers — the cost
//! of labeling one dataset entry (§3.1 does this 9598 times at 500
//! iterations each). Objectives run on one [`Evaluator`] scratch buffer,
//! exactly like the labeling hot path.

use qbench::Bench;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa::optimize::{FiniteDiffAdam, GridSearch, Maximizer, NelderMead, Spsa};
use qaoa::{Evaluator, MaxCutHamiltonian, QaoaCircuit};

fn labeled_circuit() -> QaoaCircuit {
    let mut rng = StdRng::seed_from_u64(11);
    let graph = qgraph::generate::random_regular(10, 3, &mut rng).expect("feasible shape");
    QaoaCircuit::new(MaxCutHamiltonian::new(&graph))
}

fn bench_optimizers_50_iters(bench: &mut Bench) {
    let circuit = labeled_circuit();
    let mut evaluator = Evaluator::new(&circuit);
    let mut objective = |flat: &[f64]| evaluator.expectation_flat(flat);
    let start = [0.3, 0.2];
    bench.sample_size(10);

    bench.bench("optimize_50_iters_n10/nelder_mead", || {
        let mut rng = StdRng::seed_from_u64(1);
        NelderMead::new(50).maximize(&mut objective, &start, &mut rng)
    });
    bench.bench("optimize_50_iters_n10/spsa", || {
        let mut rng = StdRng::seed_from_u64(1);
        Spsa::new(50).maximize(&mut objective, &start, &mut rng)
    });
    bench.bench("optimize_50_iters_n10/finite_diff_adam", || {
        let mut rng = StdRng::seed_from_u64(1);
        FiniteDiffAdam::new(50).maximize(&mut objective, &start, &mut rng)
    });
    bench.bench("optimize_50_iters_n10/grid_32x32", || {
        let mut rng = StdRng::seed_from_u64(1);
        GridSearch { resolution: 32 }.maximize(&mut objective, &start, &mut rng)
    });
}

fn bench_labeling_budget(bench: &mut Bench) {
    // Full paper budget (500 Nelder–Mead iterations) on one mid-size graph.
    let circuit = labeled_circuit();
    let mut evaluator = Evaluator::new(&circuit);
    let mut objective = |flat: &[f64]| evaluator.expectation_flat(flat);
    bench.sample_size(10);
    for iters in [100usize, 500] {
        let objective = &mut objective;
        bench.bench_with_input("label_one_graph", iters, move || {
            let mut rng = StdRng::seed_from_u64(2);
            NelderMead::new(iters).maximize(&mut *objective, &[0.3, 0.2], &mut rng)
        });
    }
}

fn main() {
    let mut bench = Bench::from_env();
    bench_optimizers_50_iters(&mut bench);
    bench_labeling_budget(&mut bench);
    bench.finish();
}
