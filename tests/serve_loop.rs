//! The concurrent serving loop under fire: typed-API parity with the
//! legacy entry points, load shedding at the watermark / capacity /
//! deadline boundaries, mid-traffic hot-swap correctness (no torn or
//! stale artifact, old generation keeps serving on a refused swap), the
//! `admission` and `hot_swap` failpoints, and the zero-drop shutdown
//! contract. The lock-free `SwapCell` primitive itself is stress-tested
//! in `qpool::swap`; this file tests the serving protocol built on it.

#![allow(deprecated)] // legacy wrappers exercised on purpose (parity proofs)

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::train::{TrainConfig, TrainHistory};
use gnn::{GnnKind, GnnModel};
use qaoa_gnn::dataset::{LabelConfig, LabelReport};
use qaoa_gnn::faults::{self, FaultAction};
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::serve::{Priority, RequestError, ServeRequest, SkipReason};
use qaoa_gnn::serve_loop::{LoopConfig, ServeLoop, SwapError, Ticket};
use qaoa_gnn::{GuardedPredictor, RunArtifact, Rung, ServeConfig, TrainingEnvelope};
use qgraph::generate::DatasetSpec;
use qgraph::Graph;

/// A cheap valid artifact whose weights depend on `seed`; the wide
/// envelope keeps every test graph in-envelope.
fn artifact(seed: u64) -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = gnn::ModelConfig {
        hidden_dim: 4,
        ..gnn::ModelConfig::default()
    };
    let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
    RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: seed,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    }
}

fn small_loop(queue_capacity: usize, shed_watermark: usize) -> ServeLoop {
    ServeLoop::new(
        artifact(8101),
        LoopConfig::default()
            .with_workers(2)
            .with_queue_capacity(queue_capacity)
            .with_shed_watermark(shed_watermark)
            .with_batch_size(8),
    )
}

// ---------------------------------------------------------------- parity

/// The acceptance criterion: `handle(ServeRequest)` is bit-identical to
/// the legacy `predict` / `predict_text` paths for in-envelope requests —
/// on a *real trained* artifact, not just the cheap fixture.
#[test]
fn handle_is_bit_identical_to_legacy_paths_on_trained_artifact() {
    let mut rng = StdRng::seed_from_u64(8201);
    let config = PipelineConfig::paper_scale()
        .with_dataset(DatasetSpec::with_count(24))
        .with_training(TrainConfig::quick(4))
        .with_test_size(6);
    let config = PipelineConfig {
        labeling: LabelConfig::quick(30),
        ..config
    };
    let pipeline = Pipeline::run(GnnKind::Gcn, &config, &mut rng);
    let served = GuardedPredictor::new(pipeline.to_artifact(&config), ServeConfig::default());

    for n in [4usize, 6, 9, 12] {
        let graph = Graph::cycle(n).unwrap();
        let legacy = served.predict(&graph).unwrap();
        let typed = served
            .handle(&ServeRequest::from_graph(graph.clone()))
            .result
            .unwrap();
        assert_eq!(typed, legacy, "graph payload diverged at n={n}");
        let (lg, lb) = legacy.angles();
        let (tg, tb) = typed.angles();
        assert_eq!(lg.to_bits(), tg.to_bits());
        assert_eq!(lb.to_bits(), tb.to_bits());

        let text = qgraph::io::graph_to_string(&graph);
        let legacy_text = served.predict_text(&text).unwrap();
        let typed_text = served.handle(&ServeRequest::from_text(text)).result.unwrap();
        assert_eq!(typed_text, legacy_text, "text payload diverged at n={n}");
        assert_eq!(typed_text, legacy, "text and graph payloads diverged at n={n}");
    }
}

#[test]
fn serve_batch_matches_handle_per_item() {
    let served = GuardedPredictor::new(artifact(8301), ServeConfig::default());
    let graphs: Vec<Graph> = (3..9).map(|n| Graph::cycle(n).unwrap()).collect();
    let batch = served.serve_batch(&graphs);
    for (graph, legacy) in graphs.iter().zip(batch) {
        let typed = served
            .handle(&ServeRequest::from_graph(graph.clone()))
            .result;
        assert_eq!(typed.unwrap(), legacy.unwrap());
    }
}

// ----------------------------------------------------------- shed ladder

#[test]
fn shed_requests_report_skip_reason_and_valid_fixed_angles() {
    let served = GuardedPredictor::new(artifact(8401), ServeConfig::default());
    let response = served.handle_shed(&ServeRequest::from_graph(Graph::cycle(8).unwrap()), 41);
    let outcome = response.result.unwrap();
    assert_eq!(outcome.rung, Rung::FixedAngle);
    assert_eq!(
        outcome.skips[0].reason,
        SkipReason::Shed { queue_depth: 41 }
    );
    let (gamma, beta) = outcome.angles();
    assert!(gamma.is_finite() && (0.0..=std::f64::consts::TAU).contains(&gamma));
    assert!(beta.is_finite() && (0.0..=std::f64::consts::FRAC_PI_2).contains(&beta));
    assert!(outcome.was_shed());
    // The shed answer is the same fixed-angle answer the full ladder would
    // give when the GNN rung is down — degraded, not wrong.
    let _fault = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
    let degraded = served
        .handle(&ServeRequest::from_graph(Graph::cycle(8).unwrap()))
        .result
        .unwrap();
    assert_eq!(degraded.rung, Rung::FixedAngle);
    let (dg, db) = degraded.angles();
    assert_eq!(dg.to_bits(), gamma.to_bits());
    assert_eq!(db.to_bits(), beta.to_bits());
}

#[test]
fn watermark_sheds_normal_but_not_high_priority() {
    // Watermark 0: every Normal admission is marked to shed; High keeps
    // the full ladder until hard capacity.
    let serve = small_loop(64, 0);
    let normal = serve.handle_wait(ServeRequest::from_graph(Graph::cycle(6).unwrap()));
    let outcome = normal.response.result.as_ref().unwrap();
    assert!(
        outcome.skips.iter().any(|s| matches!(s.reason, SkipReason::Shed { .. })),
        "normal-priority request above the watermark must shed: {outcome:?}"
    );
    let high = serve.handle_wait(
        ServeRequest::from_graph(Graph::cycle(6).unwrap()).with_priority(Priority::High),
    );
    let outcome = high.response.result.as_ref().unwrap();
    assert_eq!(outcome.rung, Rung::Gnn, "high priority keeps the full ladder");
    assert!(!outcome.was_shed());
}

#[test]
fn hard_capacity_sheds_inline_and_bounds_the_queue() {
    // One worker, capacity 4: a burst of submissions must overflow into
    // inline Ready sheds, and the queue depth must never exceed capacity.
    let serve = ServeLoop::new(
        artifact(8501),
        LoopConfig::default()
            .with_workers(1)
            .with_queue_capacity(4)
            .with_shed_watermark(4)
            .with_batch_size(4),
    );
    let tickets: Vec<Ticket> = (0..64)
        .map(|_| serve.submit(ServeRequest::from_graph(Graph::cycle(10).unwrap())))
        .collect();
    let inline_sheds = tickets
        .iter()
        .filter(|t| matches!(t, Ticket::Ready(_)))
        .count();
    assert!(inline_sheds > 0, "burst of 64 into capacity 4 must shed inline");
    let mut answered = 0;
    for ticket in tickets {
        let done = ticket.wait();
        assert!(done.response.result.is_ok());
        answered += 1;
    }
    assert_eq!(answered, 64, "every request gets exactly one reply");
    let stats = serve.stats();
    assert_eq!(stats.total(), 64);
    assert!(stats.shed as usize >= inline_sheds);
    assert!(stats.max_depth <= 4, "queue exceeded its bound: {}", stats.max_depth);
}

#[test]
fn expired_deadline_sheds_at_execution_time() {
    // One worker, slow lane: queue 32 patient requests, then one with a
    // zero deadline behind them. By the time a worker reaches it, it has
    // waited far longer than 0µs and must shed.
    let serve = ServeLoop::new(
        artifact(8601),
        LoopConfig::default()
            .with_workers(1)
            .with_queue_capacity(256)
            .with_shed_watermark(256)
            .with_batch_size(4),
    );
    let patient: Vec<Ticket> = (0..32)
        .map(|_| serve.submit(ServeRequest::from_graph(Graph::cycle(12).unwrap())))
        .collect();
    let deadline = serve.submit(
        ServeRequest::from_graph(Graph::cycle(6).unwrap()).with_deadline_micros(0),
    );
    let done = deadline.wait();
    let outcome = done.response.result.unwrap();
    assert!(
        outcome.skips.iter().any(|s| matches!(s.reason, SkipReason::Shed { .. })),
        "expired deadline must shed: {outcome:?}"
    );
    for ticket in patient {
        assert!(ticket.wait().response.result.is_ok());
    }
}

// ------------------------------------------------------------- hot swap

/// Mid-traffic hot-swap stress: submitters hammer the loop while the test
/// thread swaps artifacts. Every request must complete with a valid
/// outcome (no torn or stale-freed artifact — a torn artifact would panic
/// a worker and surface as `RequestError::Internal`), observed
/// generations must never exceed the published one, and at least one
/// response must come from a post-swap generation.
#[test]
fn hot_swap_under_traffic_never_tears_and_rolls_generations_forward() {
    let serve = ServeLoop::new(
        artifact(8701),
        LoopConfig::default()
            .with_workers(3)
            .with_queue_capacity(512)
            .with_shed_watermark(512)
            .with_batch_size(4)
            .with_serve(ServeConfig::default().with_verify_max_nodes(0)),
    );
    const SWAPS: u64 = 8;
    const REQUESTS: usize = 600;
    let max_seen = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        let submitters: Vec<_> = (0..2)
            .map(|t| {
                let serve = &serve;
                let max_seen = &max_seen;
                scope.spawn(move || {
                    for i in 0..REQUESTS {
                        let n = 3 + (t + i) % 10;
                        let done =
                            serve.handle_wait(ServeRequest::from_graph(Graph::cycle(n).unwrap()));
                        let outcome = done.response.result.expect("every request serves");
                        let (gamma, beta) = outcome.angles();
                        assert!(gamma.is_finite() && beta.is_finite());
                        assert!(
                            done.generation <= serve.generation(),
                            "response claims a generation never published"
                        );
                        max_seen.fetch_max(done.generation, std::sync::atomic::Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for i in 0..SWAPS {
            let generation = serve.swap_artifact(artifact(8800 + i)).expect("swap");
            assert_eq!(generation, i + 1, "generations are sequential");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        for handle in submitters {
            handle.join().expect("submitter");
        }
    });
    let stats = serve.stats();
    assert_eq!(stats.swaps, SWAPS);
    assert_eq!(stats.generation, SWAPS);
    assert_eq!(stats.total(), 2 * REQUESTS as u64);
    assert_eq!(stats.rejected, 0, "no request was refused or torn");
    assert!(
        max_seen.load(std::sync::atomic::Ordering::SeqCst) >= 1,
        "no response was served from a post-swap generation"
    );
}

#[test]
fn swap_rejects_invalid_artifact_and_old_generation_keeps_serving() {
    let serve = small_loop(64, 64);
    // Corrupt weights: drop a matrix so the model cannot rebuild.
    let mut broken = artifact(8901);
    broken.weights.params.pop();
    match serve.swap_artifact(broken) {
        Err(SwapError::Rejected(_)) => {}
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(serve.generation(), 0, "failed swap must not bump the generation");
    let done = serve.handle_wait(ServeRequest::from_graph(Graph::cycle(7).unwrap()));
    assert_eq!(done.generation, 0);
    assert_eq!(done.response.result.unwrap().rung, Rung::Gnn);
}

#[test]
fn hot_swap_failpoint_refuses_and_contains_panics() {
    let serve = small_loop(64, 64);
    {
        let _fault = faults::armed(faults::HOT_SWAP, FaultAction::Error, 1);
        match serve.swap_artifact(artifact(9001)) {
            Err(SwapError::Rejected(e)) => assert!(e.contains("hot_swap")),
            other => panic!("expected Rejected, got {other:?}"),
        }
    }
    {
        let _fault = faults::armed(faults::HOT_SWAP, FaultAction::Panic, 1);
        match serve.swap_artifact(artifact(9002)) {
            Err(SwapError::Panicked(_)) => {}
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
    assert_eq!(serve.generation(), 0);
    // Disarmed: the same artifact swaps in cleanly, mid-session.
    assert_eq!(serve.swap_artifact(artifact(9003)).unwrap(), 1);
    let done = serve.handle_wait(ServeRequest::from_graph(Graph::cycle(7).unwrap()));
    assert_eq!(done.generation, 1);
}

#[test]
fn admission_failpoint_refuses_with_typed_error() {
    let serve = small_loop(64, 64);
    {
        let _fault = faults::armed(faults::ADMISSION, FaultAction::Error, 1);
        let done = serve
            .submit(ServeRequest::from_graph(Graph::cycle(5).unwrap()))
            .wait();
        match done.response.result {
            Err(RequestError::Admission(e)) => assert!(e.contains("admission")),
            other => panic!("expected Admission error, got {other:?}"),
        }
    }
    {
        let _fault = faults::armed(faults::ADMISSION, FaultAction::Panic, 1);
        let done = serve
            .submit(ServeRequest::from_graph(Graph::cycle(5).unwrap()))
            .wait();
        match done.response.result {
            Err(RequestError::Admission(e)) => assert!(e.contains("contained")),
            other => panic!("expected contained Admission panic, got {other:?}"),
        }
    }
    // Disarmed: serves normally; the two refusals were counted, not lost.
    let done = serve.handle_wait(ServeRequest::from_graph(Graph::cycle(5).unwrap()));
    assert!(done.response.result.is_ok());
    assert_eq!(serve.stats().rejected, 2);
    assert_eq!(serve.stats().total(), 3);
}

// ------------------------------------------------------------- shutdown

#[test]
fn shutdown_drains_every_queued_request() {
    let tickets: Vec<Ticket>;
    {
        let serve = ServeLoop::new(
            artifact(9101),
            LoopConfig::default()
                .with_workers(1)
                .with_queue_capacity(512)
                .with_shed_watermark(512)
                .with_batch_size(8),
        );
        tickets = (0..100)
            .map(|i| serve.submit(ServeRequest::from_graph(Graph::cycle(3 + i % 8).unwrap())))
            .collect();
        // `serve` drops here with most of the queue still pending.
    }
    for ticket in tickets {
        let done = ticket.wait();
        assert!(
            done.response.result.is_ok(),
            "request dropped or failed at shutdown: {:?}",
            done.response.result
        );
    }
}

// ------------------------------------------------- rejections still typed

#[test]
fn loop_propagates_typed_rejections_and_floor_refusals() {
    let serve = small_loop(64, 64);
    // Hostile text through the loop: typed parse rejection, line number intact.
    let done = serve.handle_wait(ServeRequest::from_text("n 3\ne 0 1 nan\n"));
    match done.response.result {
        Err(RequestError::Parse(e)) => assert_eq!(e.line, 2),
        other => panic!("expected Parse rejection, got {other:?}"),
    }
    // A Gnn rung floor on a model-down loop: typed BelowFloor refusal.
    // (Guard-armed failpoints are thread-gated and cannot reach the worker
    // threads, so model-down is forced structurally: an artifact whose
    // weights cannot rebuild disables the GNN rung in every worker.)
    let mut headless = artifact(9401);
    headless.weights.params.pop();
    let serve = ServeLoop::new(
        headless,
        LoopConfig::default().with_workers(1).with_batch_size(4),
    );
    let done = serve.handle_wait(
        ServeRequest::from_graph(Graph::cycle(6).unwrap()).with_rung_floor(Rung::Gnn),
    );
    match done.response.result {
        Err(RequestError::BelowFloor { served, floor }) => {
            assert_eq!(served, Rung::FixedAngle);
            assert_eq!(floor, Rung::Gnn);
        }
        other => panic!("expected BelowFloor, got {other:?}"),
    }
}

// --------------------------------------------------------- publish hook

#[test]
fn pipeline_publish_hot_swaps_trained_model_into_live_loop() {
    let serve = ServeLoop::new(
        artifact(9201),
        LoopConfig::default().with_workers(1).with_batch_size(4),
    );
    assert_eq!(serve.generation(), 0);
    let mut rng = StdRng::seed_from_u64(9301);
    let config = PipelineConfig::paper_scale()
        .with_dataset(DatasetSpec::with_count(16))
        .with_training(TrainConfig::quick(3))
        .with_test_size(4);
    let config = PipelineConfig {
        labeling: LabelConfig::quick(20),
        ..config
    };
    let pipeline = Pipeline::run(GnnKind::Gcn, &config, &mut rng);
    let generation = pipeline.publish(&config, &serve).expect("publish");
    assert_eq!(generation, 1);
    // The freshly published model answers — bit-identical to serving it
    // through a standalone predictor built from the same artifact.
    let graph = Graph::cycle(8).unwrap();
    let done = serve.handle_wait(ServeRequest::from_graph(graph.clone()));
    assert_eq!(done.generation, 1);
    let loop_outcome = done.response.result.unwrap();
    let standalone = GuardedPredictor::new(pipeline.to_artifact(&config), ServeConfig::default());
    let direct = standalone
        .handle(&ServeRequest::from_graph(graph))
        .result
        .unwrap();
    assert_eq!(loop_outcome, direct);
}

// ------------------------------------------------- canonical-form cache

/// Hot-swap invalidation protocol: warming the cache, swapping the
/// artifact, and re-asking the same graph must re-run the ladder against
/// the *new* generation — never serve the old generation's memoized
/// reply — and then re-warm normally.
#[test]
fn hot_swap_empties_cache_and_next_request_misses_on_new_artifact() {
    use qaoa_gnn::CacheConfig;
    let serve = ServeLoop::new(
        artifact(9401),
        LoopConfig::default()
            .with_workers(1)
            .with_batch_size(4)
            .with_cache(CacheConfig::default()),
    );
    let graph = Graph::cycle(8).unwrap();

    let fresh = serve
        .handle_wait(ServeRequest::from_graph(graph.clone()))
        .response
        .result
        .unwrap();
    assert!(!fresh.cached);
    let warm = serve
        .handle_wait(ServeRequest::from_graph(graph.clone()))
        .response
        .result
        .unwrap();
    assert!(warm.cached, "second identical request must hit");

    serve.swap_artifact(artifact(9402)).expect("swap");
    let stats = serve.cache_stats();
    assert_eq!(stats.entries, 0, "swap must empty the cache eagerly");
    assert!(stats.invalidations >= 1);

    let after = serve.handle_wait(ServeRequest::from_graph(graph.clone()));
    assert_eq!(after.generation, 1);
    let after = after.response.result.unwrap();
    assert!(!after.cached, "post-swap request must miss");
    // Different weights, different prediction: proof the miss was served
    // by the new artifact rather than a resurrected entry.
    assert_ne!(after.angles(), fresh.angles());
    let rewarmed = serve
        .handle_wait(ServeRequest::from_graph(graph))
        .response
        .result
        .unwrap();
    assert!(rewarmed.cached, "the new generation re-warms normally");
    assert_eq!(
        {
            let mut unmarked = rewarmed;
            unmarked.cached = false;
            unmarked
        },
        after
    );
}

/// Churn through the live loop: far more distinct graphs than the cache
/// holds. The LRU must stay inside both configured bounds at all times
/// while evicting, and replays of recent graphs must still hit.
#[test]
fn cache_churn_through_loop_respects_bounds_and_keeps_recency() {
    use qaoa_gnn::CacheConfig;
    const CAPACITY: usize = 8;
    let serve = ServeLoop::new(
        artifact(9501),
        LoopConfig::default()
            .with_workers(2)
            .with_batch_size(4)
            .with_cache(
                CacheConfig::default()
                    .with_shards(2)
                    .with_capacity_entries(CAPACITY),
            ),
    );
    let max_bytes = CacheConfig::default().max_bytes;
    // 3..=14 nodes × {cycle, path, star, complete} = 48 distinct
    // canonical forms churned twice.
    let mut graphs = Vec::new();
    for n in 3..=14usize {
        graphs.push(Graph::cycle(n).unwrap());
        graphs.push(Graph::path(n).unwrap());
        graphs.push(Graph::star(n).unwrap());
        graphs.push(Graph::complete(n).unwrap());
    }
    for round in 0..2 {
        for graph in &graphs {
            let outcome = serve
                .handle_wait(ServeRequest::from_graph(graph.clone()))
                .response
                .result
                .unwrap();
            let _ = (round, outcome);
            let stats = serve.cache_stats();
            assert!(
                stats.entries <= CAPACITY,
                "entry bound violated: {} > {CAPACITY}",
                stats.entries
            );
            assert!(
                stats.resident_bytes <= max_bytes,
                "byte bound violated: {} > {max_bytes}",
                stats.resident_bytes
            );
        }
    }
    let stats = serve.cache_stats();
    assert!(stats.evictions > 0, "churn this size must evict");
    assert!(stats.inserts > CAPACITY as u64);

    // The most recent CAPACITY/shard survivors are the recently-used
    // tail of the churn: replaying the very last graph must hit.
    let last = graphs.last().unwrap().clone();
    let replay = serve
        .handle_wait(ServeRequest::from_graph(last))
        .response
        .result
        .unwrap();
    assert!(replay.cached, "the most recently inserted graph must survive LRU");
}
